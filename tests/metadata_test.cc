#include "gtest/gtest.h"
#include "metadata/metadata_db.h"
#include "test_util.h"

namespace mistique {
namespace {

TEST(ColumnKeyTest, ParsesFourParts) {
  ASSERT_OK_AND_ASSIGN(ColumnKey key,
                       ParseColumnKey("zillow.P1_v0.x_train.taxamount"));
  EXPECT_EQ(key.project, "zillow");
  EXPECT_EQ(key.model, "P1_v0");
  EXPECT_EQ(key.intermediate, "x_train");
  EXPECT_EQ(key.column, "taxamount");
  EXPECT_EQ(key.ToString(), "zillow.P1_v0.x_train.taxamount");
}

TEST(ColumnKeyTest, ColumnMayContainDots) {
  ASSERT_OK_AND_ASSIGN(ColumnKey key, ParseColumnKey("p.m.i.col.with.dots"));
  EXPECT_EQ(key.column, "col.with.dots");
}

TEST(ColumnKeyTest, RejectsMalformed) {
  EXPECT_FALSE(ParseColumnKey("only.three.parts").ok());
  EXPECT_FALSE(ParseColumnKey("").ok());
  EXPECT_FALSE(ParseColumnKey("a.b.c.").ok());
  EXPECT_FALSE(ParseColumnKey("..c.d").ok());
}

TEST(MetadataDbTest, RegisterAndFind) {
  MetadataDb db;
  ASSERT_OK_AND_ASSIGN(ModelId id,
                       db.RegisterModel("zillow", "P1_v0", ModelKind::kTrad));
  EXPECT_NE(id, kInvalidModelId);
  ASSERT_OK_AND_ASSIGN(ModelId found, db.FindModel("zillow", "P1_v0"));
  EXPECT_EQ(found, id);
  EXPECT_FALSE(db.FindModel("zillow", "missing").ok());
  EXPECT_EQ(db.RegisterModel("zillow", "P1_v0", ModelKind::kTrad)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(MetadataDbTest, SameNameDifferentProjectsAllowed) {
  MetadataDb db;
  ASSERT_OK(db.RegisterModel("p1", "model", ModelKind::kTrad).status());
  ASSERT_OK(db.RegisterModel("p2", "model", ModelKind::kDnn).status());
  EXPECT_EQ(db.num_models(), 2u);
}

TEST(MetadataDbTest, IntermediateLookup) {
  MetadataDb db;
  ASSERT_OK_AND_ASSIGN(ModelId id,
                       db.RegisterModel("proj", "m", ModelKind::kDnn));
  ASSERT_OK_AND_ASSIGN(ModelInfo * model, db.GetModel(id));
  IntermediateInfo interm;
  interm.name = "layer3";
  interm.num_rows = 100;
  model->intermediates.push_back(interm);

  ASSERT_OK_AND_ASSIGN(IntermediateInfo * found,
                       db.FindIntermediate(id, "layer3"));
  EXPECT_EQ(found->num_rows, 100u);
  EXPECT_FALSE(db.FindIntermediate(id, "layer9").ok());
}

TEST(MetadataDbTest, ResolveColumn) {
  MetadataDb db;
  ASSERT_OK_AND_ASSIGN(ModelId id,
                       db.RegisterModel("proj", "m", ModelKind::kTrad));
  ASSERT_OK_AND_ASSIGN(ModelInfo * model, db.GetModel(id));
  IntermediateInfo interm;
  interm.name = "x_train";
  ColumnInfo col;
  col.name = "price";
  interm.columns.push_back(col);
  model->intermediates.push_back(interm);

  ASSERT_OK_AND_ASSIGN(ColumnKey key, ParseColumnKey("proj.m.x_train.price"));
  ASSERT_OK_AND_ASSIGN(MetadataDb::ColumnHandle handle,
                       db.ResolveColumn(key));
  EXPECT_EQ(handle.model, id);
  EXPECT_EQ(handle.intermediate_index, 0u);
  EXPECT_EQ(handle.column_index, 0u);

  ASSERT_OK_AND_ASSIGN(ColumnKey bad_col,
                       ParseColumnKey("proj.m.x_train.missing"));
  EXPECT_FALSE(db.ResolveColumn(bad_col).ok());
  ASSERT_OK_AND_ASSIGN(ColumnKey bad_interm,
                       ParseColumnKey("proj.m.missing.price"));
  EXPECT_FALSE(db.ResolveColumn(bad_interm).ok());
}

TEST(MetadataDbTest, NoteQueryIncrements) {
  MetadataDb db;
  ASSERT_OK_AND_ASSIGN(ModelId id,
                       db.RegisterModel("proj", "m", ModelKind::kTrad));
  ASSERT_OK_AND_ASSIGN(ModelInfo * model, db.GetModel(id));
  IntermediateInfo interm;
  interm.name = "pred";
  model->intermediates.push_back(interm);
  ASSERT_OK(db.NoteQuery(id, "pred"));
  ASSERT_OK(db.NoteQuery(id, "pred"));
  ASSERT_OK_AND_ASSIGN(const IntermediateInfo* found,
                       std::as_const(db).FindIntermediate(id, "pred"));
  EXPECT_EQ(found->n_query, 2u);
}

TEST(MetadataDbTest, ListModelsSorted) {
  MetadataDb db;
  ASSERT_OK(db.RegisterModel("p", "a", ModelKind::kTrad).status());
  ASSERT_OK(db.RegisterModel("p", "b", ModelKind::kTrad).status());
  ASSERT_OK(db.RegisterModel("p", "c", ModelKind::kTrad).status());
  const auto ids = db.ListModels();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_LT(ids[1], ids[2]);
}

TEST(IntermediateInfoTest, NumRowBlocks) {
  IntermediateInfo interm;
  interm.num_rows = 2500;
  interm.row_block_size = 1024;
  EXPECT_EQ(interm.NumRowBlocks(), 3u);
  interm.num_rows = 1024;
  EXPECT_EQ(interm.NumRowBlocks(), 1u);
  interm.num_rows = 0;
  EXPECT_EQ(interm.NumRowBlocks(), 0u);
}

}  // namespace
}  // namespace mistique
