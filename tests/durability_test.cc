#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mistique.h"
#include "durability/crc32c.h"
#include "durability/durable_file.h"
#include "durability/fault_injection.h"
#include "durability/wal.h"
#include "gtest/gtest.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "storage/disk_store.h"
#include "test_util.h"

namespace mistique {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- CRC32C

TEST(Crc32cTest, KnownAnswerVectors) {
  // Standard CRC32C check values (RFC 3720 / LevelDB's test vectors).
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> incr(32);
  for (size_t i = 0; i < incr.size(); ++i) incr[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(incr.data(), incr.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendComposesOverSplits) {
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{8}, size_t{100}, data.size()}) {
    const uint32_t head = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32cExtend(head, data.data() + split, data.size() - split),
              whole)
        << "split at " << split;
  }
}

// ------------------------------------------------------ File envelope

std::vector<uint8_t> TestPayload(size_t n) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) payload[i] = static_cast<uint8_t>(i * 13);
  return payload;
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

/// Flips one payload byte of an envelope file (header left intact).
void FlipPayloadByte(const std::string& path) {
  const auto size = fs::file_size(path);
  ASSERT_GT(size, kEnvelopeHeaderSize);
  FlipByteAt(path, kEnvelopeHeaderSize + (size - kEnvelopeHeaderSize) / 2);
}

TEST(EnvelopeTest, RoundTripLeavesNoTemp) {
  TempDir dir("envelope");
  const std::string path = dir.path() + "/blob.mq";
  const std::vector<uint8_t> payload = TestPayload(1000);
  ASSERT_OK(WriteEnvelopeFileAtomic(path, payload, /*sync=*/true, "partition"));
  EXPECT_FALSE(fs::exists(path + kTempSuffix));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> read, ReadEnvelopeFile(path));
  EXPECT_EQ(read, payload);
  ASSERT_OK_AND_ASSIGN(uint64_t probed, ProbeEnvelopeFile(path));
  EXPECT_EQ(probed, payload.size());
}

TEST(EnvelopeTest, BitFlipIsDataLoss) {
  TempDir dir("envelope_flip");
  const std::string path = dir.path() + "/blob.mq";
  ASSERT_OK(WriteEnvelopeFileAtomic(path, TestPayload(1000), true, "partition"));
  FlipPayloadByte(path);
  // The header is intact, so the cheap probe still passes…
  EXPECT_OK(ProbeEnvelopeFile(path).status());
  // …but the full read catches the rot.
  EXPECT_EQ(ReadEnvelopeFile(path).status().code(), StatusCode::kDataLoss);
}

TEST(EnvelopeTest, TruncationAndStrayBytesAreCorruption) {
  TempDir dir("envelope_trunc");
  const std::string path = dir.path() + "/blob.mq";
  ASSERT_OK(WriteEnvelopeFileAtomic(path, TestPayload(1000), true, "partition"));
  const auto size = fs::file_size(path);

  // Torn write: file shorter than the declared payload.
  fs::resize_file(path, size / 2);
  EXPECT_EQ(ProbeEnvelopeFile(path).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ReadEnvelopeFile(path).status().code(), StatusCode::kCorruption);

  // Zero-length stub (crash between create and first write).
  fs::resize_file(path, 0);
  EXPECT_EQ(ProbeEnvelopeFile(path).status().code(), StatusCode::kCorruption);

  // Trailing garbage beyond the declared payload.
  ASSERT_OK(WriteEnvelopeFileAtomic(path, TestPayload(100), true, "partition"));
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "junk";
  }
  EXPECT_EQ(ProbeEnvelopeFile(path).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ReadEnvelopeFile(path).status().code(), StatusCode::kCorruption);

  // Missing file is an I/O error, not corruption.
  EXPECT_EQ(ReadEnvelopeFile(dir.path() + "/ghost.mq").status().code(),
            StatusCode::kIoError);
}

// --------------------------------------------------- Fault injection

class FaultPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Disarm(); }
};

TEST_F(FaultPointTest, ErrorBeforeRenameLeavesNeitherTempNorDestination) {
  TempDir dir("fault_pre_rename");
  for (const char* label : {"partition.tmp_written", "partition.tmp_synced"}) {
    const std::string path = dir.path() + "/" + label;
    FaultInjector::Instance().Arm(label, FaultMode::kError);
    const Status st =
        WriteEnvelopeFileAtomic(path, TestPayload(64), true, "partition");
    EXPECT_EQ(st.code(), StatusCode::kIoError) << label;
    EXPECT_FALSE(fs::exists(path)) << label;
    EXPECT_FALSE(fs::exists(path + kTempSuffix)) << label;
    EXPECT_FALSE(FaultInjector::Instance().armed());  // One-shot.
  }
}

TEST_F(FaultPointTest, ErrorAfterRenameLeavesCompleteDestination) {
  TempDir dir("fault_post_rename");
  const std::string path = dir.path() + "/blob.mq";
  FaultInjector::Instance().Arm("partition.renamed", FaultMode::kError);
  const Status st =
      WriteEnvelopeFileAtomic(path, TestPayload(64), true, "partition");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // Past the rename the destination is complete and valid.
  EXPECT_FALSE(fs::exists(path + kTempSuffix));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> read, ReadEnvelopeFile(path));
  EXPECT_EQ(read, TestPayload(64));
}

TEST_F(FaultPointTest, CountdownFiresOnNthHit) {
  TempDir dir("fault_nth");
  FaultInjector::Instance().Arm("partition.tmp_written", FaultMode::kError,
                                /*countdown=*/2);
  const std::string a = dir.path() + "/a.mq";
  const std::string b = dir.path() + "/b.mq";
  EXPECT_OK(WriteEnvelopeFileAtomic(a, TestPayload(8), true, "partition"));
  EXPECT_EQ(
      WriteEnvelopeFileAtomic(b, TestPayload(8), true, "partition").code(),
      StatusCode::kIoError);
  EXPECT_TRUE(fs::exists(a));
  EXPECT_FALSE(fs::exists(b));
}

TEST_F(FaultPointTest, LabelsCoverEveryInstrumentedPoint) {
  // The crash harness iterates this list; keep it in sync with the
  // MISTIQUE_FAULT call sites.
  const std::vector<std::string>& labels = FaultPointLabels();
  for (const char* expected :
       {"partition.tmp_written", "partition.tmp_synced", "partition.renamed",
        "catalog.tmp_written", "catalog.tmp_synced", "catalog.renamed",
        "wal.appended", "wal.rotate"}) {
    EXPECT_NE(std::find(labels.begin(), labels.end(), expected), labels.end())
        << expected;
  }
}

// -------------------------------------------------- Write-ahead log

TEST(WalTest, AppendReplayRoundTrip) {
  TempDir dir("wal_roundtrip");
  const std::string path = dir.path() + "/catalog.wal";
  {
    WriteAheadLog wal;
    ASSERT_OK(wal.Open(path, /*epoch_if_new=*/7, /*truncate_to=*/0, true));
    EXPECT_EQ(wal.epoch(), 7u);
    ASSERT_OK(wal.Append(1, {0xAA, 0xBB}, /*durable=*/true));
    ASSERT_OK(wal.Append(2, {}, /*durable=*/false));
    ASSERT_OK(wal.Append(3, std::vector<uint8_t>(300, 0x5C), true));
  }
  ASSERT_OK_AND_ASSIGN(WriteAheadLog::ReplayResult replay,
                       WriteAheadLog::Read(path));
  EXPECT_EQ(replay.epoch, 7u);
  EXPECT_FALSE(replay.truncated_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].type, 1);
  EXPECT_EQ(replay.records[0].payload, (std::vector<uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(replay.records[1].type, 2);
  EXPECT_TRUE(replay.records[1].payload.empty());
  EXPECT_EQ(replay.records[2].payload.size(), 300u);
}

TEST(WalTest, TornTailIsDiscardedAndTrimmedOnReopen) {
  TempDir dir("wal_torn");
  const std::string path = dir.path() + "/catalog.wal";
  {
    WriteAheadLog wal;
    ASSERT_OK(wal.Open(path, 4, 0, true));
    ASSERT_OK(wal.Append(1, {1, 2, 3}, true));
    ASSERT_OK(wal.Append(2, {4, 5}, true));
  }
  {
    // Simulate a crash mid-append: a record header promising more bytes
    // than the file holds.
    std::ofstream f(path, std::ios::app | std::ios::binary);
    const uint32_t bogus_len = 1000;
    f.write(reinterpret_cast<const char*>(&bogus_len), 4);
    f.write("\x12\x34\x56\x78\x9a", 5);
  }
  ASSERT_OK_AND_ASSIGN(WriteAheadLog::ReplayResult replay,
                       WriteAheadLog::Read(path));
  EXPECT_TRUE(replay.truncated_tail);
  ASSERT_EQ(replay.records.size(), 2u);

  // Reopening with the replay's valid_bytes trims the tail; appends land
  // after the last valid record.
  WriteAheadLog wal;
  ASSERT_OK(wal.Open(path, 4, replay.valid_bytes, true));
  EXPECT_EQ(wal.epoch(), 4u);
  ASSERT_OK(wal.Append(3, {9}, true));
  ASSERT_OK_AND_ASSIGN(WriteAheadLog::ReplayResult again,
                       WriteAheadLog::Read(path));
  EXPECT_FALSE(again.truncated_tail);
  ASSERT_EQ(again.records.size(), 3u);
  EXPECT_EQ(again.records[2].type, 3);
}

TEST(WalTest, CorruptRecordStopsReplay) {
  TempDir dir("wal_corrupt");
  const std::string path = dir.path() + "/catalog.wal";
  {
    WriteAheadLog wal;
    ASSERT_OK(wal.Open(path, 1, 0, true));
    ASSERT_OK(wal.Append(1, std::vector<uint8_t>(64, 0x11), true));
    ASSERT_OK(wal.Append(2, std::vector<uint8_t>(64, 0x22), true));
  }
  // Flip a byte inside the SECOND record's payload.
  const auto size = fs::file_size(path);
  FlipByteAt(path, size - 10);
  ASSERT_OK_AND_ASSIGN(WriteAheadLog::ReplayResult replay,
                       WriteAheadLog::Read(path));
  EXPECT_TRUE(replay.truncated_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].type, 1);
}

TEST(WalTest, ExistingLogKeepsItsEpochUntilRotated) {
  TempDir dir("wal_epoch");
  const std::string path = dir.path() + "/catalog.wal";
  {
    WriteAheadLog wal;
    ASSERT_OK(wal.Open(path, 3, 0, true));
    ASSERT_OK(wal.Append(1, {7}, true));
  }
  // A stale log (snapshot advanced to epoch 9, crash before rotation)
  // must keep reporting epoch 3 so the caller notices and rotates.
  WriteAheadLog wal;
  ASSERT_OK(wal.Open(path, /*epoch_if_new=*/9, 0, true));
  EXPECT_EQ(wal.epoch(), 3u);
  ASSERT_OK(wal.Rotate(9));
  EXPECT_EQ(wal.epoch(), 9u);
  ASSERT_OK_AND_ASSIGN(WriteAheadLog::ReplayResult replay,
                       WriteAheadLog::Read(path));
  EXPECT_EQ(replay.epoch, 9u);
  EXPECT_TRUE(replay.records.empty());
}

// ------------------------------------------------- DiskStore hardening

TEST(DiskStoreHardeningTest, OpenSweepsTempsAndSkipsBadFiles) {
  TempDir dir("disk_harden");
  const std::string store_dir = dir.path() + "/store";
  {
    DiskStore store;
    ASSERT_OK(store.Open(store_dir));
    ASSERT_OK(store.WritePartition(1, TestPayload(500)));
  }
  // Crash debris: an orphan temp, a zero-length partition, a truncated
  // partition, and files that are not partitions at all.
  { std::ofstream(store_dir + "/part-9.mq.tmp") << "half-written"; }
  { std::ofstream(store_dir + "/part-7.mq"); }  // Zero-length.
  {
    std::ofstream f(store_dir + "/part-8.mq", std::ios::binary);
    f << "not an envelope";
  }
  { std::ofstream(store_dir + "/part-x.mq") << "?"; }
  { std::ofstream(store_dir + "/notes.txt") << "unrelated"; }

  DiskStore store;
  std::vector<std::string> warnings;
  ASSERT_OK(store.Open(store_dir, true, &warnings));
  EXPECT_TRUE(store.Contains(1));
  EXPECT_FALSE(store.Contains(7));
  EXPECT_FALSE(store.Contains(8));
  EXPECT_EQ(store.num_partitions(), 1u);
  // The temp was swept; the malformed files were skipped but preserved.
  EXPECT_FALSE(fs::exists(store_dir + "/part-9.mq.tmp"));
  EXPECT_TRUE(fs::exists(store_dir + "/part-7.mq"));
  EXPECT_TRUE(fs::exists(store_dir + "/part-8.mq"));
  ASSERT_GE(warnings.size(), 4u);
  const std::string all = [&] {
    std::string s;
    for (const auto& w : warnings) s += w + "\n";
    return s;
  }();
  EXPECT_NE(all.find("part-9.mq.tmp"), std::string::npos) << all;
  EXPECT_NE(all.find("part-7.mq"), std::string::npos) << all;
  EXPECT_NE(all.find("part-8.mq"), std::string::npos) << all;
  EXPECT_NE(all.find("part-x.mq"), std::string::npos) << all;
  EXPECT_EQ(all.find("notes.txt"), std::string::npos) << all;

  // The good partition still round-trips.
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bytes, store.ReadPartition(1));
  EXPECT_EQ(bytes, TestPayload(500));
}

TEST(DiskStoreHardeningTest, QuarantineMovesFileAside) {
  TempDir dir("disk_quarantine");
  const std::string store_dir = dir.path() + "/store";
  DiskStore store;
  ASSERT_OK(store.Open(store_dir));
  ASSERT_OK(store.WritePartition(3, TestPayload(256)));
  FlipPayloadByte(store_dir + "/part-3.mq");
  EXPECT_EQ(store.ReadPartition(3).status().code(), StatusCode::kDataLoss);

  ASSERT_OK(store.QuarantinePartition(3));
  EXPECT_FALSE(store.Contains(3));
  EXPECT_FALSE(fs::exists(store_dir + "/part-3.mq"));
  EXPECT_TRUE(fs::exists(store_dir + "/part-3.mq" + kQuarantineSuffix));

  // Quarantined files are invisible (and un-warned) on the next Open.
  DiskStore reopened;
  std::vector<std::string> warnings;
  ASSERT_OK(reopened.Open(store_dir, true, &warnings));
  EXPECT_FALSE(reopened.Contains(3));
  EXPECT_TRUE(warnings.empty());
}

// ------------------------------------- Engine: corruption -> heal

class HealTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("heal");
    ZillowConfig config;
    config.num_properties = 400;
    config.num_train = 300;
    config.num_test = 100;
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir_->path()));
  }

  MistiqueOptions Options() {
    MistiqueOptions opts;
    opts.store.directory = dir_->path() + "/store";
    opts.strategy = StorageStrategy::kDedup;
    opts.row_block_size = 128;
    return opts;
  }

  /// Logs the zillow pipeline, saves the catalog, and returns the
  /// pred_test predictions for later comparison.
  std::vector<double> LogAndSave() {
    std::vector<double> original;
    Mistique mq;
    EXPECT_OK(mq.Open(Options()));
    auto pipeline = BuildZillowPipeline(1, 0, dir_->path());
    EXPECT_OK(pipeline.status());
    EXPECT_OK(mq.LogPipeline(pipeline->get(), "zillow").status());
    Result<FetchResult> r =
        mq.GetIntermediates({"zillow.P1_v0.pred_test.pred"});
    EXPECT_OK(r.status());
    original = r->columns[0];
    EXPECT_OK(mq.SaveCatalog());
    pipeline_ = std::move(*pipeline);
    return original;
  }

  void FlipEveryPartition() {
    for (const auto& entry :
         fs::directory_iterator(dir_->path() + "/store")) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("part-", 0) == 0 && name.ends_with(".mq")) {
        FlipPayloadByte(entry.path().string());
      }
    }
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Pipeline> pipeline_;
};

TEST_F(HealTest, OpenTimeBitFlipQuarantinesThenHealsViaRerun) {
  const std::vector<double> original = LogAndSave();
  FlipEveryPartition();

  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  // RecoverIndex read every partition, caught the rot, quarantined.
  EXPECT_GE(mq.corruptions_detected(), 1u);
  EXPECT_EQ(mq.partitions_healed(), 0u);
  int corrupt_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_->path() + "/store")) {
    if (entry.path().string().ends_with(kQuarantineSuffix)) corrupt_files++;
  }
  EXPECT_GE(corrupt_files, 1);

  // Without an executor the demoted intermediate cannot be served.
  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  EXPECT_EQ(mq.Fetch(req).status().code(), StatusCode::kNotFound);

  // Attaching the executor enables transparent rerun + re-materialization.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.AttachPipeline("zillow", "P1_v0", pipeline.get()));
  ASSERT_OK_AND_ASSIGN(FetchResult healed, mq.Fetch(req));
  EXPECT_FALSE(healed.used_read);
  EXPECT_EQ(healed.columns[0], original);

  // Healing the remaining demoted intermediates credits the partitions.
  ASSERT_OK_AND_ASSIGN(const ModelInfo* model,
                       mq.metadata().GetModel(
                           mq.metadata().FindModel("zillow", "P1_v0")
                               .ValueOrDie()));
  for (const IntermediateInfo& interm : model->intermediates) {
    FetchRequest heal_req = req;
    heal_req.intermediate = interm.name;
    ASSERT_OK(mq.Fetch(heal_req).status());
  }
  EXPECT_GE(mq.partitions_healed(), 1u);

  // Re-materialized data serves the read path with the same values.
  req.force_read = true;
  ASSERT_OK_AND_ASSIGN(FetchResult read_back, mq.Fetch(req));
  EXPECT_TRUE(read_back.used_read);
  EXPECT_EQ(read_back.columns[0], original);
}

TEST_F(HealTest, RuntimeBitFlipFallsBackToRerunTransparently) {
  const std::vector<double> original = LogAndSave();

  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  EXPECT_EQ(mq.corruptions_detected(), 0u);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.AttachPipeline("zillow", "P1_v0", pipeline.get()));

  // Rot the files AFTER Open: the first read off disk trips the checksum.
  FlipEveryPartition();

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  ASSERT_OK_AND_ASSIGN(FetchResult result, mq.Fetch(req));
  EXPECT_EQ(result.columns[0], original);
  EXPECT_GE(mq.corruptions_detected(), 1u);

  // The heal re-materialized the queried intermediate: the read path works
  // again and returns the right bytes.
  req.force_read = true;
  ASSERT_OK_AND_ASSIGN(FetchResult read_back, mq.Fetch(req));
  EXPECT_TRUE(read_back.used_read);
  EXPECT_EQ(read_back.columns[0], original);
}

TEST_F(HealTest, ConcurrentFetchesDuringHealAllSucceed) {
  const std::vector<double> original = LogAndSave();
  FlipEveryPartition();

  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.AttachPipeline("zillow", "P1_v0", pipeline.get()));

  constexpr int kThreads = 4;
  constexpr int kIters = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        FetchRequest req;
        req.project = "zillow";
        req.model = "P1_v0";
        req.intermediate = "pred_test";
        Result<FetchResult> r = mq.Fetch(req);
        if (!r.ok() || r->columns[0] != original) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(mq.corruptions_detected(), 1u);
}

}  // namespace
}  // namespace mistique
