#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/mistique.h"
#include "durability/fault_injection.h"
#include "gtest/gtest.h"
#include "mvcc/snapshot_manager.h"
#include "test_util.h"

namespace mistique {
namespace {

// ---------------------------------------------------------------------------
// SnapshotManager unit tests: the epoch/pin/reclaim protocol in isolation.
// ---------------------------------------------------------------------------

mvcc::SnapshotState TaggedState(int tag, std::atomic<int>* destroyed) {
  return std::shared_ptr<const int>(new int(tag), [destroyed](const int* p) {
    destroyed->fetch_add(1, std::memory_order_relaxed);
    delete p;
  });
}

int TagOf(const mvcc::SnapshotState& state) {
  return *static_cast<const int*>(state.get());
}

TEST(SnapshotManagerTest, PinAcrossPublishKeepsPrePublishState) {
  mvcc::SnapshotManager mgr;
  std::atomic<int> destroyed{0};
  EXPECT_EQ(mgr.epoch(), 0u);

  EXPECT_EQ(mgr.Publish(TaggedState(1, &destroyed)), 1u);
  mvcc::ReadPin pin = mgr.Pin();
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin.epoch(), 1u);
  EXPECT_EQ(TagOf(pin.state()), 1);

  // Two more publishes: the pin must keep serving the epoch-1 payload
  // while new pins see the latest.
  EXPECT_EQ(mgr.Publish(TaggedState(2, &destroyed)), 2u);
  EXPECT_EQ(mgr.Publish(TaggedState(3, &destroyed)), 3u);
  EXPECT_EQ(TagOf(pin.state()), 1);
  EXPECT_EQ(mgr.epoch(), 3u);
  {
    mvcc::ReadPin fresh = mgr.Pin();
    EXPECT_EQ(fresh.epoch(), 3u);
    EXPECT_EQ(TagOf(fresh.state()), 3);
  }
  pin.Release();
  EXPECT_FALSE(pin);
}

TEST(SnapshotManagerTest, ReclaimerNeverFreesPinnedSnapshot) {
  mvcc::SnapshotManager mgr;
  std::atomic<int> destroyed{0};

  mgr.Publish(TaggedState(1, &destroyed));
  mvcc::ReadPin pin = mgr.Pin();

  // Retire the pinned snapshot (and one more on top). Nothing may be
  // destroyed while the epoch-1 pin is alive.
  mgr.Publish(TaggedState(2, &destroyed));
  mgr.Publish(TaggedState(3, &destroyed));
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_EQ(mgr.retired_snapshots(), 2u);
  EXPECT_EQ(mgr.pinned_readers(), 1u);
  EXPECT_EQ(mgr.snapshots_reclaimed(), 0u);
  EXPECT_EQ(TagOf(pin.state()), 1);

  // Dropping the last old pin lets the deferred reclaimer free both
  // retired snapshots; the current one stays live.
  pin.Release();
  EXPECT_EQ(destroyed.load(), 2);
  EXPECT_EQ(mgr.retired_snapshots(), 0u);
  EXPECT_EQ(mgr.snapshots_reclaimed(), 2u);
  EXPECT_EQ(mgr.pinned_readers(), 0u);
}

TEST(SnapshotManagerTest, WaitForReadersBeforeBlocksUntilPinDrops) {
  mvcc::SnapshotManager mgr;
  std::atomic<int> destroyed{0};
  mgr.Publish(TaggedState(1, &destroyed));
  mvcc::ReadPin pin = mgr.Pin();
  mgr.Publish(TaggedState(2, &destroyed));

  std::atomic<bool> drained{false};
  std::thread waiter([&] {
    mgr.WaitForReadersBefore(2);  // epoch-1 pin must drain first
    drained.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(drained.load(std::memory_order_acquire));
  pin.Release();
  waiter.join();
  EXPECT_TRUE(drained.load(std::memory_order_acquire));
}

// Vacuum racing long-pinned readers: the delete publishes epoch 3, then
// vacuum's WaitForReadersBefore(3) barrier must hold — and the pre-delete
// snapshot must stay unreclaimed — until the LAST pre-delete pin drops,
// not merely the first. (The soak harness drives this same interleaving
// end-to-end with concurrent network readers; this pins down the
// manager-level contract it relies on.)
TEST(SnapshotManagerTest, WaitForReadersBeforeHoldsUntilLastPreDeletePin) {
  mvcc::SnapshotManager mgr;
  std::atomic<int> destroyed{0};
  mgr.Publish(TaggedState(1, &destroyed));
  mgr.Publish(TaggedState(2, &destroyed));

  // Two independent readers pin the pre-delete snapshot (epoch 2).
  mvcc::ReadPin early = mgr.Pin();
  mvcc::ReadPin late = mgr.Pin();
  EXPECT_EQ(mgr.min_pinned_epoch(), 2u);

  // The "delete" publishes epoch 3 and vacuum waits for pre-delete pins.
  mgr.Publish(TaggedState(3, &destroyed));
  std::atomic<bool> barrier_passed{false};
  std::thread vacuum([&] {
    mgr.WaitForReadersBefore(3);
    barrier_passed.store(true, std::memory_order_release);
  });

  // Dropping ONE of the two pins must not open the barrier or let the
  // reclaimer free the epoch-2 snapshot the surviving pin still reads.
  early.Release();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(barrier_passed.load(std::memory_order_acquire));
  EXPECT_EQ(mgr.min_pinned_epoch(), 2u);
  EXPECT_EQ(TagOf(late.state()), 2);
  // Epoch 1 was never pinned past its retirement, so it may be gone, but
  // the pinned epoch-2 snapshot must not be.
  EXPECT_EQ(mgr.retired_snapshots(), 1u);
  EXPECT_LE(destroyed.load(), 1);

  // The last pre-delete pin drops: barrier opens, snapshot reclaimed.
  late.Release();
  vacuum.join();
  EXPECT_TRUE(barrier_passed.load(std::memory_order_acquire));
  EXPECT_EQ(mgr.min_pinned_epoch(), 0u);
  EXPECT_EQ(mgr.retired_snapshots(), 0u);
  EXPECT_EQ(destroyed.load(), 2);
}

TEST(SnapshotManagerTest, MovedPinTransfersOwnership) {
  mvcc::SnapshotManager mgr;
  std::atomic<int> destroyed{0};
  mgr.Publish(TaggedState(1, &destroyed));

  mvcc::ReadPin a = mgr.Pin();
  mvcc::ReadPin b = std::move(a);
  EXPECT_FALSE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(mgr.pinned_readers(), 1u);
  b.Release();
  EXPECT_EQ(mgr.pinned_readers(), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level MVCC tests: snapshot isolation through the public Mistique
// API, using ImportModel as the ingest path (synthetic, deterministic data).
// ---------------------------------------------------------------------------

std::vector<ImportIntermediate> SyntheticModel(int model_index,
                                               uint64_t rows = 64) {
  ImportIntermediate interm;
  interm.name = "pred";
  interm.stage_index = 1;
  interm.num_rows = rows;
  interm.column_names = {"pred", "score"};
  interm.columns.resize(2);
  for (uint64_t r = 0; r < rows; ++r) {
    interm.columns[0].push_back(model_index * 1000.0 + r * 0.25);
    interm.columns[1].push_back(std::sin(model_index + 0.1 * r));
  }
  return {interm};
}

class MvccEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = std::make_unique<TempDir>("mq_mvcc"); }
  void TearDown() override { FaultInjector::Instance().Disarm(); }

  MistiqueOptions Options() {
    MistiqueOptions opts;
    opts.store.directory = dir_->path() + "/store";
    opts.strategy = StorageStrategy::kDedup;
    opts.row_block_size = 32;
    return opts;
  }

  static FetchRequest RequestFor(int model_index) {
    FetchRequest req;
    req.project = "proj";
    req.model = "m" + std::to_string(model_index);
    req.intermediate = "pred";
    return req;
  }

  static void ExpectByteIdentical(const FetchResult& result, int model_index,
                                  uint64_t rows = 64) {
    ASSERT_EQ(result.columns.size(), 2u);
    ASSERT_EQ(result.columns[0].size(), rows);
    for (uint64_t r = 0; r < rows; ++r) {
      EXPECT_EQ(result.columns[0][r], model_index * 1000.0 + r * 0.25) << r;
      EXPECT_EQ(result.columns[1][r], std::sin(model_index + 0.1 * r)) << r;
    }
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(MvccEngineTest, PublishesBumpEpochAndKeepOldDataByteIdentical) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  const uint64_t epoch0 = mq.CurrentEpoch();

  ASSERT_OK(mq.ImportModel("proj", "m1", SyntheticModel(1)).status());
  const uint64_t epoch1 = mq.CurrentEpoch();
  EXPECT_GT(epoch1, epoch0);
  ASSERT_OK_AND_ASSIGN(FetchResult before, mq.Fetch(RequestFor(1)));
  ExpectByteIdentical(before, 1);

  ASSERT_OK(mq.ImportModel("proj", "m2", SyntheticModel(2)).status());
  ASSERT_OK(mq.ImportModel("proj", "m3", SyntheticModel(3)).status());
  EXPECT_GT(mq.CurrentEpoch(), epoch1);

  // Data published at an earlier epoch is untouched by later publishes.
  ASSERT_OK_AND_ASSIGN(FetchResult after, mq.Fetch(RequestFor(1)));
  ExpectByteIdentical(after, 1);

  // No reader pins are held between queries, so nothing stays retired.
  EXPECT_EQ(mq.snapshots().pinned_readers(), 0u);
  EXPECT_EQ(mq.snapshots().retired_snapshots(), 0u);
}

// The TSAN target: readers fetch and scan a published model in a tight
// loop while the writer streams in new models. Readers must never observe
// an error, a stall, or anything but byte-identical published data.
TEST_F(MvccEngineTest, ConcurrentIngestFetchScanStorm) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  ASSERT_OK(mq.ImportModel("proj", "m0", SyntheticModel(0)).status());

  constexpr int kReaders = 3;
  constexpr int kWriterModels = 6;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> fetches{0};
  std::atomic<uint64_t> scans{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        Result<FetchResult> fetched = mq.Fetch(RequestFor(0));
        if (!fetched.ok() || fetched->columns.size() != 2 ||
            fetched->columns[0].size() != 64 ||
            fetched->columns[0][4] != 1.0) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        fetches.fetch_add(1, std::memory_order_relaxed);
        if (t == 0) continue;  // one thread fetches only
        ScanRequest scan;
        scan.project = "proj";
        scan.model = "m0";
        scan.intermediate = "pred";
        scan.predicate_column = "pred";
        scan.lo = 2.0;
        scan.hi = 6.0;
        scan.columns = {"score"};
        Result<ScanResult> scanned = mq.Scan(scan);
        // pred values are r * 0.25 for r in [0, 64): 17 rows in [2, 6].
        if (!scanned.ok() || scanned->row_ids.size() != 17) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int m = 1; m <= kWriterModels; ++m) {
    ASSERT_OK(mq.ImportModel("proj", "m" + std::to_string(m),
                             SyntheticModel(m))
                  .status());
  }
  // Let readers overlap the post-ingest epochs too before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(fetches.load(), 0u);
  EXPECT_GT(scans.load(), 0u);

  // Every streamed model is visible and byte-identical once published.
  for (int m = 0; m <= kWriterModels; ++m) {
    ASSERT_OK_AND_ASSIGN(FetchResult result, mq.Fetch(RequestFor(m)));
    ExpectByteIdentical(result, m);
  }
  EXPECT_EQ(mq.snapshots().pinned_readers(), 0u);
}

// A failure between stage and publish (the mvcc.publish fault point sits
// after the staged partitions seal but before the kModelAdd WAL record)
// must roll back cleanly: readers keep the prior epoch, and a reopen
// recovers to it with the orphan chunks derived dead.
TEST_F(MvccEngineTest, FailedPublishRollsBackAndReopenRecoversPriorEpoch) {
  {
    Mistique mq;
    ASSERT_OK(mq.Open(Options()));
    ASSERT_OK(mq.ImportModel("proj", "m1", SyntheticModel(1)).status());
    const uint64_t epoch_before = mq.CurrentEpoch();

    FaultInjector::Instance().Arm("mvcc.publish", FaultMode::kError);
    EXPECT_EQ(mq.ImportModel("proj", "m2", SyntheticModel(2)).status().code(),
              StatusCode::kIoError);
    FaultInjector::Instance().Disarm();

    // The failed ingest left no catalog trace and no epoch bump.
    EXPECT_EQ(mq.CurrentEpoch(), epoch_before);
    EXPECT_EQ(mq.Fetch(RequestFor(2)).status().code(), StatusCode::kNotFound);
    ASSERT_OK_AND_ASSIGN(FetchResult survivor, mq.Fetch(RequestFor(1)));
    ExpectByteIdentical(survivor, 1);

    // Retrying the same name after the rollback succeeds.
    ASSERT_OK(mq.ImportModel("proj", "m2", SyntheticModel(2)).status());
    EXPECT_GT(mq.CurrentEpoch(), epoch_before);
  }

  // Reopen from disk: both committed models replay from the kModelAdd WAL
  // records; the aborted attempt's sealed-but-unreferenced chunks are
  // derived dead and reclaimable.
  Mistique reopened;
  ASSERT_OK(reopened.Open(Options()));
  ASSERT_OK_AND_ASSIGN(FetchResult m1, reopened.Fetch(RequestFor(1)));
  ExpectByteIdentical(m1, 1);
  ASSERT_OK_AND_ASSIGN(FetchResult m2, reopened.Fetch(RequestFor(2)));
  ExpectByteIdentical(m2, 2);
  ASSERT_OK(reopened.Vacuum().status());
}

// Crash between stage and publish: the process dies after the staged
// partitions hit disk but before the kModelAdd record, so reopen must
// serve exactly the pre-crash catalog. Emulated by failing the commit at
// the fault point and discarding the instance without SaveCatalog — the
// on-disk artifacts (sealed orphan partitions + a WAL without the record)
// are identical to a kill at that point.
TEST_F(MvccEngineTest, CrashMidIngestLeavesOnlyOrphanChunks) {
  uint64_t footprint_committed = 0;
  {
    Mistique mq;
    ASSERT_OK(mq.Open(Options()));
    ASSERT_OK(mq.ImportModel("proj", "m1", SyntheticModel(1)).status());
    footprint_committed = mq.StorageFootprintBytes();
    FaultInjector::Instance().Arm("mvcc.publish", FaultMode::kError);
    EXPECT_FALSE(mq.ImportModel("proj", "m9", SyntheticModel(9)).ok());
    // No SaveCatalog: recovery is WAL-only, like a real crash.
  }
  Mistique reopened;
  ASSERT_OK(reopened.Open(Options()));
  ASSERT_OK_AND_ASSIGN(FetchResult m1, reopened.Fetch(RequestFor(1)));
  ExpectByteIdentical(m1, 1);
  EXPECT_EQ(reopened.Fetch(RequestFor(9)).status().code(),
            StatusCode::kNotFound);
  // Vacuum drops the orphans; what remains serves m1 byte-identically.
  ASSERT_OK(reopened.Vacuum().status());
  EXPECT_LE(reopened.StorageFootprintBytes(), footprint_committed);
  ASSERT_OK_AND_ASSIGN(FetchResult again, reopened.Fetch(RequestFor(1)));
  ExpectByteIdentical(again, 1);
}

// DeleteModel keeps serving pinned readers; Vacuum waits for them. The
// reader thread here holds queries open across the delete to prove the
// barrier orders reclamation after the last read drains.
TEST_F(MvccEngineTest, DeleteThenVacuumWaitsForSnapshotReaders) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  ASSERT_OK(mq.ImportModel("proj", "m1", SyntheticModel(1)).status());
  ASSERT_OK(mq.ImportModel("proj", "m2", SyntheticModel(2)).status());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    // m2 stays published throughout; every fetch must succeed.
    while (!stop.load(std::memory_order_acquire)) {
      Result<FetchResult> r = mq.Fetch(RequestFor(2));
      if (!r.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  });

  ASSERT_OK(mq.DeleteModel("proj", "m1"));
  ASSERT_OK_AND_ASSIGN(uint64_t reclaimed, mq.Vacuum());
  EXPECT_GT(reclaimed, 0u);
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  EXPECT_EQ(mq.Fetch(RequestFor(1)).status().code(), StatusCode::kNotFound);
  ASSERT_OK_AND_ASSIGN(FetchResult m2, mq.Fetch(RequestFor(2)));
  ExpectByteIdentical(m2, 2);
}

}  // namespace
}  // namespace mistique
