#include <cmath>

#include "gtest/gtest.h"
#include "pipeline/csv.h"
#include "pipeline/dataframe.h"
#include "test_util.h"

namespace mistique {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

DataFrame MakeFrame() {
  DataFrame f;
  (void)f.AddColumn("id", {1, 2, 3});
  (void)f.AddColumn("x", {10.5, 20.5, 30.5});
  (void)f.AddColumn("y", {0.1, kNaN, 0.3});
  return f;
}

TEST(DataFrameTest, AddAndAccess) {
  DataFrame f = MakeFrame();
  EXPECT_EQ(f.num_rows(), 3u);
  EXPECT_EQ(f.num_cols(), 3u);
  EXPECT_TRUE(f.HasColumn("x"));
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* x, f.Column("x"));
  EXPECT_EQ((*x)[1], 20.5);
  EXPECT_EQ(f.at(2, 1), 30.5);
  EXPECT_FALSE(f.Column("missing").ok());
}

TEST(DataFrameTest, DuplicateColumnRejected) {
  DataFrame f = MakeFrame();
  EXPECT_EQ(f.AddColumn("x", {1, 2, 3}).code(), StatusCode::kAlreadyExists);
}

TEST(DataFrameTest, RowCountMismatchRejected) {
  DataFrame f = MakeFrame();
  EXPECT_EQ(f.AddColumn("z", {1, 2}).code(), StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, DropShiftsIndex) {
  DataFrame f = MakeFrame();
  ASSERT_OK(f.DropColumn("x"));
  EXPECT_EQ(f.num_cols(), 2u);
  EXPECT_FALSE(f.HasColumn("x"));
  // "y" must still resolve correctly after the shift.
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* y, f.Column("y"));
  EXPECT_EQ((*y)[2], 0.3);
  EXPECT_EQ(f.NameAt(1), "y");
}

TEST(DataFrameTest, SelectPreservesOrder) {
  DataFrame f = MakeFrame();
  ASSERT_OK_AND_ASSIGN(DataFrame sel, f.Select({"y", "id"}));
  EXPECT_EQ(sel.num_cols(), 2u);
  EXPECT_EQ(sel.NameAt(0), "y");
  EXPECT_EQ(sel.NameAt(1), "id");
  EXPECT_FALSE(f.Select({"nope"}).ok());
}

TEST(DataFrameTest, TakeRows) {
  DataFrame f = MakeFrame();
  DataFrame sub = f.TakeRows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.at(0, 0), 3);  // Row 2 first.
  EXPECT_EQ(sub.at(1, 0), 1);
}

TEST(DataFrameTest, LeftJoinMatchesKeys) {
  DataFrame left;
  (void)left.AddColumn("parcelid", {10, 11, 12, 10});
  (void)left.AddColumn("date", {1, 2, 3, 4});
  DataFrame right;
  (void)right.AddColumn("parcelid", {12, 10});
  (void)right.AddColumn("sqft", {1200, 3400});

  ASSERT_OK_AND_ASSIGN(DataFrame joined, left.LeftJoin(right, "parcelid"));
  EXPECT_EQ(joined.num_rows(), 4u);
  EXPECT_EQ(joined.num_cols(), 3u);  // Key not duplicated.
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* sqft,
                       joined.Column("sqft"));
  EXPECT_EQ((*sqft)[0], 3400);
  EXPECT_TRUE(std::isnan((*sqft)[1]));  // parcel 11 unmatched.
  EXPECT_EQ((*sqft)[2], 1200);
  EXPECT_EQ((*sqft)[3], 3400);  // Duplicate key joins both rows.
}

TEST(DataFrameTest, LeftJoinNameCollisionSuffixed) {
  DataFrame left;
  (void)left.AddColumn("k", {1});
  (void)left.AddColumn("v", {5});
  DataFrame right;
  (void)right.AddColumn("k", {1});
  (void)right.AddColumn("v", {9});
  ASSERT_OK_AND_ASSIGN(DataFrame joined, left.LeftJoin(right, "k"));
  EXPECT_TRUE(joined.HasColumn("v"));
  EXPECT_TRUE(joined.HasColumn("v_r"));
}

TEST(CsvTest, RoundTripWithNaN) {
  TempDir dir("csv");
  DataFrame f = MakeFrame();
  const std::string path = dir.path() + "/t.csv";
  ASSERT_OK(WriteCsv(f, path));
  ASSERT_OK_AND_ASSIGN(DataFrame read, ReadCsv(path));
  EXPECT_EQ(read.num_rows(), 3u);
  EXPECT_EQ(read.num_cols(), 3u);
  EXPECT_EQ(read.NameAt(0), "id");
  EXPECT_EQ(read.at(1, 1), 20.5);
  EXPECT_TRUE(std::isnan(read.at(1, 2)));
  EXPECT_EQ(read.at(2, 2), 0.3);
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsv("/nonexistent/path.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, PrecisionPreserved) {
  TempDir dir("csv_precision");
  DataFrame f;
  (void)f.AddColumn("v", {0.1234567891, 1e-7, 123456789.25});
  const std::string path = dir.path() + "/p.csv";
  ASSERT_OK(WriteCsv(f, path));
  ASSERT_OK_AND_ASSIGN(DataFrame read, ReadCsv(path));
  EXPECT_NEAR(read.at(0, 0), 0.1234567891, 1e-10);
  EXPECT_NEAR(read.at(1, 0), 1e-7, 1e-16);
  EXPECT_NEAR(read.at(2, 0), 123456789.25, 1.0);
}

}  // namespace
}  // namespace mistique
