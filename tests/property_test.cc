// Randomized model-based and metamorphic properties:
//  - DataStore vs an in-memory reference under random workloads
//  - read == re-run for random row/column subsets (the core MISTIQUE
//    contract)
//  - Scan == brute-force filter for random predicates
//  - LSH recall across the similarity spectrum

#include <cmath>
#include <map>

#include "common/random.h"
#include "core/mistique.h"
#include "dedup/lsh_index.h"
#include "gtest/gtest.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "test_util.h"

namespace mistique {
namespace {

// ----------------------------- DataStore vs reference model

class DataStoreModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataStoreModelTest, RandomWorkloadMatchesReference) {
  TempDir dir("ds_model");
  DataStoreOptions opts;
  opts.directory = dir.path();
  opts.partition_target_bytes = 8 * 1024;   // Frequent seals.
  opts.memory_budget_bytes = 16 * 1024;     // Frequent evictions.
  DataStore store;
  ASSERT_OK(store.Open(opts));

  TestSeed seed(GetParam());
  Rng rng(seed);
  std::map<ChunkId, std::vector<double>> reference;
  std::vector<PartitionId> open_partitions;

  for (int op = 0; op < 400; ++op) {
    const uint64_t dice = rng.NextBelow(10);
    if (dice < 5 || reference.empty()) {
      // Add a chunk to some open partition.
      if (open_partitions.empty() || rng.Bernoulli(0.2)) {
        open_partitions.push_back(store.CreatePartition());
      }
      PartitionId target =
          open_partitions[rng.NextBelow(open_partitions.size())];
      if (!store.IsOpen(target)) {
        target = store.CreatePartition();
        open_partitions.push_back(target);
      }
      std::vector<double> values(1 + rng.NextBelow(300));
      for (double& v : values) v = rng.Gaussian();
      ASSERT_OK_AND_ASSIGN(
          ChunkId id, store.AddChunk(target, ColumnChunk::FromDoubles(values)));
      reference[id] = std::move(values);
    } else if (dice < 8) {
      // Read a random known chunk; must equal the reference.
      auto it = reference.begin();
      std::advance(it, static_cast<ptrdiff_t>(
                           rng.NextBelow(reference.size())));
      ASSERT_OK_AND_ASSIGN(ChunkRef ref, store.GetChunk(it->first));
      ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                           ref.chunk->DecodeAsDouble());
      ASSERT_EQ(decoded, it->second) << "chunk " << it->first;
    } else if (dice == 8) {
      // Seal a random open partition.
      if (!open_partitions.empty()) {
        ASSERT_OK(store.SealPartition(
            open_partitions[rng.NextBelow(open_partitions.size())]));
      }
    } else {
      ASSERT_OK(store.Flush());
    }
  }
  // Final audit: every chunk ever written is still intact.
  ASSERT_OK(store.Flush());
  for (const auto& [id, values] : reference) {
    ASSERT_OK_AND_ASSIGN(ChunkRef ref, store.GetChunk(id));
    ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                         ref.chunk->DecodeAsDouble());
    ASSERT_EQ(decoded, values) << "chunk " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataStoreModelTest,
                         ::testing::Values(101, 202, 303, 404));

// ----------------------------- read == re-run metamorphic property

class FetchEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FetchEquivalenceTest, RandomSubsetsAgree) {
  TempDir dir("fetch_eq");
  ZillowConfig config;
  config.num_properties = 500;
  config.num_train = 380;
  config.num_test = 120;
  ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir.path()));

  MistiqueOptions opts;
  opts.store.directory = dir.path() + "/store";
  opts.row_block_size = 64;
  Mistique mq;
  ASSERT_OK(mq.Open(opts));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir.path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  ASSERT_OK(mq.Flush());

  ASSERT_OK_AND_ASSIGN(ModelId id, mq.metadata().FindModel("zillow", "P1_v0"));
  ASSERT_OK_AND_ASSIGN(const ModelInfo* model,
                       std::as_const(mq.metadata()).GetModel(id));

  TestSeed seed(GetParam());
  Rng rng(seed);
  for (int round = 0; round < 10; ++round) {
    // Random intermediate, random column subset, random row subset.
    const IntermediateInfo& interm =
        model->intermediates[rng.NextBelow(model->intermediates.size())];
    FetchRequest req;
    req.project = "zillow";
    req.model = "P1_v0";
    req.intermediate = interm.name;
    for (const ColumnInfo& col : interm.columns) {
      if (rng.Bernoulli(0.4)) req.columns.push_back(col.name);
    }
    if (req.columns.empty()) req.columns.push_back(interm.columns[0].name);
    const uint64_t n_rows = 1 + rng.NextBelow(interm.num_rows);
    for (uint64_t i = 0; i < std::min<uint64_t>(n_rows, 20); ++i) {
      req.row_ids.push_back(rng.NextBelow(interm.num_rows));
    }

    req.force_read = true;
    ASSERT_OK_AND_ASSIGN(FetchResult read, mq.Fetch(req));
    req.force_read = false;
    ASSERT_OK_AND_ASSIGN(FetchResult rerun, mq.Fetch(req));

    ASSERT_EQ(read.columns.size(), rerun.columns.size());
    for (size_t c = 0; c < read.columns.size(); ++c) {
      ASSERT_EQ(read.columns[c].size(), rerun.columns[c].size());
      for (size_t r = 0; r < read.columns[c].size(); ++r) {
        const double a = read.columns[c][r];
        const double b = rerun.columns[c][r];
        if (std::isnan(a) || std::isnan(b)) {
          EXPECT_TRUE(std::isnan(a) && std::isnan(b))
              << interm.name << "." << read.column_names[c] << " row " << r;
        } else {
          EXPECT_EQ(a, b) << interm.name << "." << read.column_names[c]
                          << " row " << r;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FetchEquivalenceTest,
                         ::testing::Values(11, 22, 33));

// ----------------------------- Scan == brute force

class ScanEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScanEquivalenceTest, RandomPredicatesAgree) {
  TempDir dir("scan_eq");
  ZillowConfig config;
  config.num_properties = 500;
  config.num_train = 380;
  config.num_test = 120;
  ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir.path()));

  MistiqueOptions opts;
  opts.store.directory = dir.path() + "/store";
  opts.row_block_size = 64;
  Mistique mq;
  ASSERT_OK(mq.Open(opts));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir.path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  TestSeed seed(GetParam());
  Rng rng(seed);
  const char* columns[] = {"taxamount", "bedroomcnt", "latitude",
                           "yearbuilt"};
  for (int round = 0; round < 8; ++round) {
    const char* column = columns[rng.NextBelow(4)];

    FetchRequest full;
    full.project = "zillow";
    full.model = "P1_v0";
    full.intermediate = "properties";
    full.columns = {column};
    ASSERT_OK_AND_ASSIGN(FetchResult all, mq.Fetch(full));

    // Random bounds inside the observed value range.
    double lo = 0, hi = 0;
    {
      double mn = 1e300, mx = -1e300;
      for (double v : all.columns[0]) {
        if (std::isnan(v)) continue;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      const double a = rng.Uniform(mn, mx);
      const double b = rng.Uniform(mn, mx);
      lo = std::min(a, b);
      hi = std::max(a, b);
    }

    ScanRequest scan;
    scan.project = "zillow";
    scan.model = "P1_v0";
    scan.intermediate = "properties";
    scan.predicate_column = column;
    scan.lo = lo;
    scan.hi = hi;
    ASSERT_OK_AND_ASSIGN(ScanResult result, mq.Scan(scan));

    std::vector<uint64_t> brute;
    for (size_t i = 0; i < all.columns[0].size(); ++i) {
      const double v = all.columns[0][i];
      if (!std::isnan(v) && v >= lo && v <= hi) brute.push_back(i);
    }
    EXPECT_EQ(result.row_ids, brute) << column << " in [" << lo << ", "
                                     << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanEquivalenceTest,
                         ::testing::Values(7, 77, 777));

// ----------------------------- LSH recall sweep

TEST(LshRecallTest, RecallRisesWithSimilarity) {
  MinHashOptions mh;
  Rng rng(5);
  std::vector<double> base(1500);
  for (double& v : base) v = rng.Gaussian();
  const MinHashSignature base_sig =
      ComputeMinHash(ColumnChunk::FromDoubles(base), mh);

  // For each perturbation level, insert the base and probe with perturbed
  // variants; recall = fraction of probes that find the base above tau.
  const double tau = 0.5;
  double recall_high = 0, recall_low = 0;
  const int probes = 20;
  LshIndex index(mh.num_hashes, 32);
  index.Insert(1, base_sig);
  for (int p = 0; p < probes; ++p) {
    auto perturb = [&](double frac, uint64_t seed) {
      std::vector<double> v = base;
      Rng prng(seed);
      for (double& x : v) {
        if (prng.Bernoulli(frac)) x += 5 + prng.NextDouble();
      }
      return ComputeMinHash(ColumnChunk::FromDoubles(v), mh);
    };
    recall_high +=
        !index.Similar(perturb(0.05, 1000 + static_cast<uint64_t>(p)), tau)
             .empty();
    recall_low +=
        !index.Similar(perturb(0.70, 2000 + static_cast<uint64_t>(p)), tau)
             .empty();
  }
  EXPECT_GE(recall_high / probes, 0.95);  // 95%-similar probes: found.
  EXPECT_LE(recall_low / probes, 0.10);   // 30%-similar probes: not.
}

}  // namespace
}  // namespace mistique
