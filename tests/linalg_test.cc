#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "linalg/matrix.h"
#include "test_util.h"

namespace mistique {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.at(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(MatrixTest, TransposeAndGram) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix at = a.Transposed();
  EXPECT_EQ(at.rows(), 2u);
  EXPECT_EQ(at.at(0, 2), 5);
  Matrix g = a.Gram();
  // g = a^T a.
  Matrix expect = at.Multiply(a);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(g.at(i, j), expect.at(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, CenterColumnsZeroesMeans) {
  Matrix m = RandomMatrix(50, 4, 1);
  m.CenterColumns();
  for (size_t j = 0; j < 4; ++j) {
    double mean = 0;
    for (size_t i = 0; i < 50; ++i) mean += m.at(i, j);
    EXPECT_NEAR(mean / 50, 0.0, 1e-12);
  }
}

TEST(SvdTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 3;
  a.at(1, 1) = 1;
  a.at(2, 2) = 2;
  ASSERT_OK_AND_ASSIGN(SvdResult svd, ComputeSvd(a));
  ASSERT_EQ(svd.singular_values.size(), 3u);
  EXPECT_NEAR(svd.singular_values[0], 3, 1e-10);
  EXPECT_NEAR(svd.singular_values[1], 2, 1e-10);
  EXPECT_NEAR(svd.singular_values[2], 1, 1e-10);
}

TEST(SvdTest, ReconstructsInput) {
  Matrix a = RandomMatrix(20, 6, 3);
  ASSERT_OK_AND_ASSIGN(SvdResult svd, ComputeSvd(a));
  // A ?= U S V^T.
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      double v = 0;
      for (size_t k = 0; k < svd.singular_values.size(); ++k) {
        v += svd.u.at(i, k) * svd.singular_values[k] * svd.v.at(j, k);
      }
      EXPECT_NEAR(v, a.at(i, j), 1e-8);
    }
  }
}

TEST(SvdTest, OrthonormalU) {
  Matrix a = RandomMatrix(30, 5, 4);
  ASSERT_OK_AND_ASSIGN(SvdResult svd, ComputeSvd(a));
  for (size_t p = 0; p < 5; ++p) {
    for (size_t q = 0; q < 5; ++q) {
      double dot = 0;
      for (size_t i = 0; i < 30; ++i) dot += svd.u.at(i, p) * svd.u.at(i, q);
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SvdTest, WideMatrixHandledByTranspose) {
  Matrix a = RandomMatrix(4, 10, 5);
  ASSERT_OK_AND_ASSIGN(SvdResult svd, ComputeSvd(a));
  EXPECT_EQ(svd.singular_values.size(), 4u);
  // Reconstruction check.
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      double v = 0;
      for (size_t k = 0; k < svd.singular_values.size(); ++k) {
        v += svd.u.at(i, k) * svd.singular_values[k] * svd.v.at(j, k);
      }
      EXPECT_NEAR(v, a.at(i, j), 1e-8);
    }
  }
}

TEST(SvdTest, EmptyRejected) {
  EXPECT_FALSE(ComputeSvd(Matrix()).ok());
}

TEST(SvdProjectTest, KeepsRequestedVariance) {
  // Rank-2-dominant matrix: two strong directions + tiny noise.
  Rng rng(6);
  Matrix a(100, 10);
  for (size_t i = 0; i < 100; ++i) {
    const double f1 = rng.Gaussian() * 10;
    const double f2 = rng.Gaussian() * 5;
    for (size_t j = 0; j < 10; ++j) {
      a.at(i, j) = f1 * std::sin(static_cast<double>(j)) +
                   f2 * std::cos(static_cast<double>(j) * 2) +
                   0.01 * rng.Gaussian();
    }
  }
  ASSERT_OK_AND_ASSIGN(Matrix proj, SvdProject(a, 0.99));
  EXPECT_LE(proj.cols(), 3u);  // Two real directions (+ maybe one noise).
  EXPECT_EQ(proj.rows(), 100u);
}

TEST(CcaTest, IdenticalSubspacesCorrelateFully) {
  Matrix x = RandomMatrix(60, 4, 7);
  // y = x * random invertible mix: same subspace.
  Matrix mix = RandomMatrix(4, 4, 8);
  Matrix y = x.Multiply(mix);
  ASSERT_OK_AND_ASSIGN(std::vector<double> rho, ComputeCca(x, y));
  ASSERT_EQ(rho.size(), 4u);
  for (double r : rho) EXPECT_NEAR(r, 1.0, 1e-6);
}

TEST(CcaTest, IndependentDataCorrelatesWeakly) {
  Matrix x = RandomMatrix(500, 3, 9);
  Matrix y = RandomMatrix(500, 3, 10);
  ASSERT_OK_AND_ASSIGN(std::vector<double> rho, ComputeCca(x, y));
  for (double r : rho) EXPECT_LT(r, 0.35);
}

TEST(CcaTest, PartialSharedStructure) {
  // One shared latent factor out of two dims each.
  Rng rng(11);
  Matrix x(300, 2), y(300, 2);
  for (size_t i = 0; i < 300; ++i) {
    const double shared = rng.Gaussian();
    x.at(i, 0) = shared + 0.1 * rng.Gaussian();
    x.at(i, 1) = rng.Gaussian();
    y.at(i, 0) = shared + 0.1 * rng.Gaussian();
    y.at(i, 1) = rng.Gaussian();
  }
  ASSERT_OK_AND_ASSIGN(std::vector<double> rho, ComputeCca(x, y));
  ASSERT_EQ(rho.size(), 2u);
  EXPECT_GT(rho[0], 0.9);   // The shared factor.
  EXPECT_LT(rho[1], 0.35);  // Nothing else shared.
}

TEST(CcaTest, RowMismatchRejected) {
  EXPECT_FALSE(
      ComputeCca(RandomMatrix(10, 2, 1), RandomMatrix(11, 2, 2)).ok());
}

}  // namespace
}  // namespace mistique
