#include <cmath>

#include "core/mistique.h"
#include "gtest/gtest.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "test_util.h"

namespace mistique {
namespace {

class MistiqueTradTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("mq_trad");
    ZillowConfig config;
    config.num_properties = 500;
    config.num_train = 350;
    config.num_test = 120;
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir_->path()));
  }

  MistiqueOptions Options(StorageStrategy strategy) {
    MistiqueOptions opts;
    opts.store.directory = dir_->path() + "/store";
    opts.strategy = strategy;
    opts.row_block_size = 256;
    return opts;
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(MistiqueTradTest, LogsEveryStageAsIntermediate) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK_AND_ASSIGN(ModelId id, mq.LogPipeline(pipeline.get(), "zillow"));
  ASSERT_OK_AND_ASSIGN(const ModelInfo* model, mq.metadata().GetModel(id));
  EXPECT_EQ(model->kind, ModelKind::kTrad);
  EXPECT_EQ(model->intermediates.size(), pipeline->num_stages());
  for (const IntermediateInfo& interm : model->intermediates) {
    EXPECT_GT(interm.num_rows, 0u) << interm.name;
    EXPECT_FALSE(interm.columns.empty()) << interm.name;
    EXPECT_TRUE(interm.columns[0].materialized) << interm.name;
    EXPECT_GE(interm.cum_exec_sec_per_ex, 0) << interm.name;
  }
  EXPECT_GT(mq.StorageFootprintBytes(), 0u);
}

TEST_F(MistiqueTradTest, ReadMatchesRerunExactly) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  ASSERT_OK(mq.Flush());

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";

  req.force_read = true;
  ASSERT_OK_AND_ASSIGN(FetchResult read, mq.Fetch(req));
  req.force_read = false;
  ASSERT_OK_AND_ASSIGN(FetchResult rerun, mq.Fetch(req));

  EXPECT_TRUE(read.used_read);
  EXPECT_FALSE(rerun.used_read);
  ASSERT_EQ(read.columns.size(), 1u);
  ASSERT_EQ(read.columns[0].size(), rerun.columns[0].size());
  for (size_t i = 0; i < read.columns[0].size(); ++i) {
    EXPECT_EQ(read.columns[0][i], rerun.columns[0][i]) << i;
  }
}

TEST_F(MistiqueTradTest, ColumnSubsetAndRowSubset) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "train_merged";
  req.columns = {"taxamount", "bedroomcnt"};
  req.n_ex = 10;
  ASSERT_OK_AND_ASSIGN(FetchResult result, mq.Fetch(req));
  ASSERT_EQ(result.columns.size(), 2u);
  EXPECT_EQ(result.column_names[0], "taxamount");
  EXPECT_EQ(result.columns[0].size(), 10u);

  // Row-id fetch returns exactly those rows, matching the full fetch.
  FetchRequest by_id = req;
  by_id.n_ex = 0;
  by_id.row_ids = {3, 7};
  ASSERT_OK_AND_ASSIGN(FetchResult subset, mq.Fetch(by_id));
  ASSERT_EQ(subset.columns[0].size(), 2u);
  EXPECT_EQ(subset.columns[0][0], result.columns[0][3]);
  EXPECT_EQ(subset.columns[0][1], result.columns[0][7]);
}

TEST_F(MistiqueTradTest, GetIntermediatesKeyApi) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  ASSERT_OK_AND_ASSIGN(
      FetchResult result,
      mq.GetIntermediates({"zillow.P1_v0.pred_test.pred"}, 5));
  ASSERT_EQ(result.columns.size(), 1u);
  EXPECT_EQ(result.columns[0].size(), 5u);

  ASSERT_OK_AND_ASSIGN(FetchResult star,
                       mq.GetIntermediates({"zillow.P1_v0.x_train.*"}, 3));
  EXPECT_GT(star.columns.size(), 5u);

  EXPECT_FALSE(mq.GetIntermediates({}).ok());
  EXPECT_FALSE(mq.GetIntermediates({"zillow.P1_v0.pred_test.pred",
                                    "zillow.P1_v0.x_train.taxamount"})
                   .ok());
  EXPECT_FALSE(mq.GetIntermediates({"zillow.P1_v0.missing.pred"}).ok());
}

TEST_F(MistiqueTradTest, DedupSharesStorageAcrossVariants) {
  // Two variants of the same template share all intermediates except the
  // model outputs: DEDUP must store the second pipeline almost for free.
  Mistique store_all;
  Mistique dedup;
  ASSERT_OK(store_all.Open([&] {
    MistiqueOptions o = Options(StorageStrategy::kStoreAll);
    o.store.directory = dir_->path() + "/sa";
    return o;
  }()));
  ASSERT_OK(dedup.Open([&] {
    MistiqueOptions o = Options(StorageStrategy::kDedup);
    o.store.directory = dir_->path() + "/dd";
    return o;
  }()));

  for (int variant = 0; variant < 2; ++variant) {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> p1,
                         BuildZillowPipeline(3, variant, dir_->path()));
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> p2,
                         BuildZillowPipeline(3, variant, dir_->path()));
    ASSERT_OK(store_all.LogPipeline(p1.get(), "zillow").status());
    ASSERT_OK(dedup.LogPipeline(p2.get(), "zillow").status());
  }
  ASSERT_OK(store_all.Flush());
  ASSERT_OK(dedup.Flush());

  EXPECT_LT(dedup.StorageFootprintBytes(),
            store_all.StorageFootprintBytes() / 2);
  EXPECT_GT(dedup.dedup().duplicate_chunks(), 0u);
}

TEST_F(MistiqueTradTest, DuplicatePipelineNameRejected) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  EXPECT_EQ(mq.LogPipeline(pipeline.get(), "zillow").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(MistiqueTradTest, FetchUnknownTargetsFail) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  FetchRequest req;
  req.project = "zillow";
  req.model = "P9_v9";
  req.intermediate = "pred_test";
  EXPECT_EQ(mq.Fetch(req).status().code(), StatusCode::kNotFound);

  req.model = "P1_v0";
  req.intermediate = "nope";
  EXPECT_EQ(mq.Fetch(req).status().code(), StatusCode::kNotFound);

  req.intermediate = "pred_test";
  req.columns = {"ghost"};
  EXPECT_EQ(mq.Fetch(req).status().code(), StatusCode::kNotFound);

  req.columns = {};
  req.row_ids = {99999};
  EXPECT_EQ(mq.Fetch(req).status().code(), StatusCode::kOutOfRange);
}

TEST_F(MistiqueTradTest, QueryCountTracked) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK_AND_ASSIGN(ModelId id, mq.LogPipeline(pipeline.get(), "zillow"));

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  ASSERT_OK(mq.Fetch(req).status());
  ASSERT_OK(mq.Fetch(req).status());
  // Snapshot readers count queries in a side table that folds into the
  // live catalog at the next writer operation (docs/MVCC.md).
  ASSERT_OK(mq.Flush());
  ASSERT_OK_AND_ASSIGN(const IntermediateInfo* interm,
                       std::as_const(mq.metadata())
                           .FindIntermediate(id, "pred_test"));
  EXPECT_EQ(interm->n_query, 2u);
}

}  // namespace
}  // namespace mistique
