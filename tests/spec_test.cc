#include "gtest/gtest.h"
#include "pipeline/spec.h"
#include "pipeline/zillow.h"
#include "test_util.h"

namespace mistique {
namespace {

// --------------------------------------------------------------- Parser

TEST(YamlParserTest, ScalarsAndMappings) {
  ASSERT_OK_AND_ASSIGN(YamlNode root, ParseYaml(R"(
name: test
count: 42
rate: 0.5
flag: true
quoted: "hello world"
)"));
  ASSERT_TRUE(root.IsMapping());
  EXPECT_EQ(root.GetString("name", ""), "test");
  EXPECT_EQ(root.GetInt("count", 0), 42);
  EXPECT_EQ(root.GetDouble("rate", 0), 0.5);
  ASSERT_OK_AND_ASSIGN(const YamlNode* flag, root.Get("flag"));
  EXPECT_TRUE(flag->AsBool());
  EXPECT_EQ(root.GetString("quoted", ""), "hello world");
  EXPECT_FALSE(root.Get("missing").ok());
}

TEST(YamlParserTest, NestedMapping) {
  ASSERT_OK_AND_ASSIGN(YamlNode root, ParseYaml(R"(
outer:
  inner:
    deep: 3
  sibling: x
)"));
  ASSERT_OK_AND_ASSIGN(const YamlNode* outer, root.Get("outer"));
  ASSERT_OK_AND_ASSIGN(const YamlNode* inner, outer->Get("inner"));
  EXPECT_EQ(inner->GetInt("deep", 0), 3);
  EXPECT_EQ(outer->GetString("sibling", ""), "x");
}

TEST(YamlParserTest, BlockSequences) {
  ASSERT_OK_AND_ASSIGN(YamlNode root, ParseYaml(R"(
items:
  - one
  - two
maps:
  - stage: a
    param: 1
  - stage: b
)"));
  ASSERT_OK_AND_ASSIGN(const YamlNode* items, root.Get("items"));
  ASSERT_TRUE(items->IsSequence());
  ASSERT_EQ(items->items().size(), 2u);
  EXPECT_EQ(items->items()[0].scalar(), "one");

  ASSERT_OK_AND_ASSIGN(const YamlNode* maps, root.Get("maps"));
  ASSERT_EQ(maps->items().size(), 2u);
  EXPECT_EQ(maps->items()[0].GetString("stage", ""), "a");
  EXPECT_EQ(maps->items()[0].GetInt("param", 0), 1);
  EXPECT_EQ(maps->items()[1].GetString("stage", ""), "b");
}

TEST(YamlParserTest, FlowSequences) {
  ASSERT_OK_AND_ASSIGN(YamlNode root, ParseYaml("cols: [a, b, c]\n"));
  ASSERT_OK_AND_ASSIGN(const YamlNode* cols, root.Get("cols"));
  ASSERT_TRUE(cols->IsSequence());
  ASSERT_EQ(cols->items().size(), 3u);
  EXPECT_EQ(cols->items()[2].scalar(), "c");
}

TEST(YamlParserTest, CommentsStripped) {
  ASSERT_OK_AND_ASSIGN(YamlNode root, ParseYaml(R"(
# full-line comment
key: value  # trailing comment
url: http://example.com/path  # colon inside value survives
)"));
  EXPECT_EQ(root.GetString("key", ""), "value");
  EXPECT_EQ(root.GetString("url", ""), "http://example.com/path");
}

TEST(YamlParserTest, TabsRejected) {
  EXPECT_FALSE(ParseYaml("key:\n\tnested: 1\n").ok());
}

TEST(YamlParserTest, MalformedRejected) {
  EXPECT_FALSE(ParseYaml("just a line without colon\n").ok());
}

// -------------------------------------------------------------- Builder

constexpr char kSpec[] = R"(
pipeline: spec_demo
stages:
  - stage: read_csv
    output: properties
    path: properties.csv
  - stage: read_csv
    output: train
    path: train.csv
  - stage: read_csv
    output: test
    path: test.csv
  - stage: avg_features
    output: properties_avg
    input: properties
  - stage: join
    output: train_merged
    left: train
    right: properties_avg
    on: parcelid
  - stage: join
    output: test_merged
    left: test
    right: properties_avg
    on: parcelid
  - stage: select_column
    output: y_frame
    input: train_merged
    column: logerror
    series: y
  - stage: drop_columns
    output: x_all
    input: train_merged
    columns: [parcelid, logerror, transactiondate]
  - stage: drop_columns
    output: x_test
    input: test_merged
    columns: [parcelid, transactiondate]
  - stage: train_test_split
    output: x_train
    x: x_all
    y: y
  - stage: train
    output: train_pred
    learner: lightgbm
    x: x_train
    y: y_train
    model_key: lgbm
    learning_rate: 0.1
    n_estimators: 10
  - stage: predict
    output: pred_test
    x: x_test
    models: [lgbm]
)";

class SpecBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("spec");
    ZillowConfig config;
    config.num_properties = 400;
    config.num_train = 300;
    config.num_test = 100;
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir_->path()));
  }
  std::unique_ptr<TempDir> dir_;
};

TEST_F(SpecBuilderTest, BuildsAndRuns) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildPipelineFromYaml(kSpec, dir_->path()));
  EXPECT_EQ(pipeline->name(), "spec_demo");
  EXPECT_EQ(pipeline->num_stages(), 12u);

  PipelineContext ctx;
  ASSERT_OK(pipeline->Run(&ctx));
  ASSERT_TRUE(ctx.frames.count("pred_test"));
  EXPECT_EQ(ctx.frames["pred_test"].num_rows(), 100u);
  // avg_features ran: derived column present downstream.
  EXPECT_TRUE(ctx.frames["x_all"].HasColumn("avg_tax_per_sqft"));
}

TEST_F(SpecBuilderTest, UnknownStageRejected) {
  const char* bad = R"(
pipeline: bad
stages:
  - stage: teleport
    output: x
)";
  EXPECT_FALSE(BuildPipelineFromYaml(bad, dir_->path()).ok());
}

TEST_F(SpecBuilderTest, MissingPiecesRejected) {
  EXPECT_FALSE(BuildPipelineFromYaml("stages:\n  - stage: join\n    output: x\n",
                                     dir_->path())
                   .ok());  // No pipeline name.
  EXPECT_FALSE(
      BuildPipelineFromYaml("pipeline: p\n", dir_->path()).ok());  // No stages.
  EXPECT_FALSE(BuildPipelineFromYaml(
                   "pipeline: p\nstages:\n  - stage: read_csv\n    output: x\n",
                   dir_->path())
                   .ok());  // read_csv without path.
  EXPECT_FALSE(BuildPipelineFromYaml(
                   "pipeline: p\nstages:\n  - stage: train\n    output: x\n"
                   "    learner: svm\n",
                   dir_->path())
                   .ok());  // Unknown learner.
}

TEST_F(SpecBuilderTest, TrainParamsFlowThrough) {
  const char* spec = R"(
pipeline: enet
stages:
  - stage: read_csv
    output: train
    path: train.csv
  - stage: select_column
    output: y_frame
    input: train
    column: logerror
    series: y
  - stage: drop_columns
    output: x_all
    input: train
    columns: [logerror]
  - stage: train_test_split
    output: x_train
    x: x_all
    y: y
  - stage: train
    output: pred
    learner: elastic_net
    x: x_train
    y: y_train
    model_key: m
    l1_ratio: 0.9
    alpha: 0.001
    normalize: false
)";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildPipelineFromYaml(spec, dir_->path()));
  PipelineContext ctx;
  ASSERT_OK(pipeline->Run(&ctx));
  EXPECT_TRUE(ctx.models.count("m"));
}

}  // namespace
}  // namespace mistique
