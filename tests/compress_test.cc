#include <cstring>

#include "common/random.h"
#include "compress/codec.h"
#include "compress/lzss.h"
#include "compress/simple_codecs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace mistique {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextBelow(256));
  return out;
}

std::vector<uint8_t> RepeatingBytes(size_t n, size_t period, uint64_t seed) {
  std::vector<uint8_t> unit = RandomBytes(period, seed);
  std::vector<uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    const size_t take = std::min(period, n - out.size());
    out.insert(out.end(), unit.begin(), unit.begin() + static_cast<ptrdiff_t>(take));
  }
  return out;
}

// Parameterized round-trip: every codec must restore every data pattern.
struct CodecCase {
  CodecType codec;
  const char* pattern;
};

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<CodecType, const char*>> {};

std::vector<uint8_t> MakePattern(const std::string& name) {
  if (name == "empty") return {};
  if (name == "single") return {42};
  if (name == "zeros") return std::vector<uint8_t>(10000, 0);
  if (name == "random") return RandomBytes(20000, 1);
  if (name == "repeating") return RepeatingBytes(30000, 512, 2);
  if (name == "low_cardinality") {
    Rng rng(3);
    std::vector<uint8_t> out(15000);
    const uint8_t dict[4] = {3, 60, 61, 255};
    for (auto& b : out) b = dict[rng.NextBelow(4)];
    return out;
  }
  if (name == "ascending") {
    std::vector<uint8_t> out(5000);
    for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
    return out;
  }
  return {1, 2, 3};
}

TEST_P(CodecRoundTripTest, RoundTrips) {
  const auto [type, pattern] = GetParam();
  ASSERT_OK_AND_ASSIGN(const Codec* codec, GetCodec(type));
  const std::vector<uint8_t> input = MakePattern(pattern);
  std::vector<uint8_t> compressed, output;
  ASSERT_OK(codec->Compress(input, &compressed));
  ASSERT_OK(codec->Decompress(compressed, &output));
  EXPECT_EQ(output, input) << CodecTypeName(type) << " on " << pattern;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllPatterns, CodecRoundTripTest,
    ::testing::Combine(
        ::testing::Values(CodecType::kNone, CodecType::kRle,
                          CodecType::kDelta, CodecType::kDictionary,
                          CodecType::kLzss),
        ::testing::Values("empty", "single", "zeros", "random", "repeating",
                          "low_cardinality", "ascending")),
    [](const auto& info) {
      return std::string(CodecTypeName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param);
    });

TEST(LzssTest, CompressesRepeatedData) {
  // The whole-buffer window must fold a repeated 8KB block to ~nothing.
  const std::vector<uint8_t> input = RepeatingBytes(256 * 1024, 8192, 7);
  LzssCodec codec;
  std::vector<uint8_t> compressed;
  ASSERT_OK(codec.Compress(input, &compressed));
  EXPECT_LT(compressed.size(), input.size() / 10);
}

TEST(LzssTest, RandomDataDoesNotExplode) {
  const std::vector<uint8_t> input = RandomBytes(64 * 1024, 9);
  LzssCodec codec;
  std::vector<uint8_t> compressed;
  ASSERT_OK(codec.Compress(input, &compressed));
  // Worst case: 1 control byte per 8 literals + header.
  EXPECT_LT(compressed.size(), input.size() * 9 / 8 + 64);
}

TEST(LzssTest, LongRangeMatchAcrossWindow) {
  // Two identical 100KB halves separated by random filler: the second half
  // must compress as one long back-reference chain even at distance 100KB+.
  std::vector<uint8_t> half = RandomBytes(100 * 1024, 11);
  std::vector<uint8_t> input = half;
  input.insert(input.end(), half.begin(), half.end());
  LzssCodec codec;
  std::vector<uint8_t> compressed, output;
  ASSERT_OK(codec.Compress(input, &compressed));
  ASSERT_OK(codec.Decompress(compressed, &output));
  EXPECT_EQ(output, input);
  EXPECT_LT(compressed.size(), half.size() * 12 / 10);
}

TEST(LzssTest, CorruptStreamIsRejected) {
  LzssCodec codec;
  std::vector<uint8_t> compressed;
  ASSERT_OK(codec.Compress(RandomBytes(1000, 1), &compressed));
  // Truncate the stream.
  compressed.resize(compressed.size() / 2);
  std::vector<uint8_t> output;
  EXPECT_FALSE(codec.Decompress(compressed, &output).ok());
}

TEST(LzssTest, BadDistanceIsCorruption) {
  // Hand-craft a stream: declared length 4, one match token with distance 9
  // into an empty history.
  std::vector<uint8_t> stream;
  const uint64_t len = 4;
  stream.resize(8);
  std::memcpy(stream.data(), &len, 8);
  stream.push_back(0x01);  // Control: first token is a match.
  const uint32_t distance = 9;
  const uint16_t mlen = 4;
  stream.resize(stream.size() + 6);
  std::memcpy(stream.data() + 9, &distance, 4);
  std::memcpy(stream.data() + 13, &mlen, 2);
  LzssCodec codec;
  std::vector<uint8_t> output;
  EXPECT_EQ(codec.Decompress(stream, &output).code(),
            StatusCode::kCorruption);
}

TEST(RleTest, CompressesRuns) {
  std::vector<uint8_t> input(100000, 7);
  RleCodec codec;
  std::vector<uint8_t> compressed;
  ASSERT_OK(codec.Compress(input, &compressed));
  EXPECT_LT(compressed.size(), 1000u);
}

TEST(RleTest, ZeroRunIsCorruption) {
  std::vector<uint8_t> stream(8 + 2, 0);
  const uint64_t len = 5;
  std::memcpy(stream.data(), &len, 8);
  // run byte = 0 -> invalid.
  RleCodec codec;
  std::vector<uint8_t> output;
  EXPECT_EQ(codec.Decompress(stream, &output).code(),
            StatusCode::kCorruption);
}

TEST(DictionaryTest, PacksLowCardinality) {
  const std::vector<uint8_t> input = MakePattern("low_cardinality");
  DictionaryCodec codec;
  std::vector<uint8_t> compressed;
  ASSERT_OK(codec.Compress(input, &compressed));
  // 4-bit packing: ~half the size.
  EXPECT_LT(compressed.size(), input.size() * 6 / 10);
}

TEST(DictionaryTest, FallsBackOnHighCardinality) {
  const std::vector<uint8_t> input = RandomBytes(4096, 21);
  DictionaryCodec codec;
  std::vector<uint8_t> compressed, output;
  ASSERT_OK(codec.Compress(input, &compressed));
  ASSERT_OK(codec.Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(CodecRegistryTest, UnknownTagRejected) {
  EXPECT_FALSE(GetCodec(static_cast<CodecType>(250)).ok());
}

TEST(CodecRegistryTest, NamesAreStable) {
  EXPECT_STREQ(CodecTypeName(CodecType::kLzss), "lzss");
  EXPECT_STREQ(CodecTypeName(CodecType::kNone), "none");
  EXPECT_STREQ(CodecTypeName(CodecType::kRle), "rle");
  EXPECT_STREQ(CodecTypeName(CodecType::kDelta), "delta");
  EXPECT_STREQ(CodecTypeName(CodecType::kDictionary), "dictionary");
}

}  // namespace
}  // namespace mistique
