#ifndef MISTIQUE_TESTS_TEST_UTIL_H_
#define MISTIQUE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "gtest/gtest.h"

namespace mistique {

/// Seed source for randomized tests: `default_seed` unless the
/// MISTIQUE_TEST_SEED env var overrides it (how a soak or CI failure is
/// replayed, docs/TESTING.md). Declare one per test body; if the test
/// fails, the destructor prints the effective seed and the exact
/// environment setting that reproduces the run.
class TestSeed {
 public:
  explicit TestSeed(uint64_t default_seed) : seed_(default_seed) {
    if (const char* env = std::getenv("MISTIQUE_TEST_SEED")) {
      if (env[0] != '\0') seed_ = std::strtoull(env, nullptr, 0);
    }
  }
  ~TestSeed() {
    if (::testing::Test::HasFailure()) {
      const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info();
      std::fprintf(stderr,
                   "[  SEED    ] reproduce with: MISTIQUE_TEST_SEED=%llu "
                   "--gtest_filter=%s.%s\n",
                   static_cast<unsigned long long>(seed_),
                   info ? info->test_suite_name() : "?",
                   info ? info->name() : "?");
    }
  }
  uint64_t value() const { return seed_; }
  operator uint64_t() const { return seed_; }

 private:
  uint64_t seed_;
};

/// Creates a unique directory under the build tree for a test and removes
/// it on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            ("mistique_test_" + tag + "_" +
             (info ? std::string(info->test_suite_name()) + "_" + info->name()
                   : "unknown"));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const ::mistique::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (0)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const ::mistique::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                             \
  ASSERT_OK_AND_ASSIGN_IMPL(                                         \
      MISTIQUE_ASSIGN_OR_RETURN_NAME(_assert_tmp_, __COUNTER__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)                   \
  auto tmp = (rexpr);                                                \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();                  \
  lhs = std::move(tmp).ValueOrDie();

}  // namespace mistique

#endif  // MISTIQUE_TESTS_TEST_UTIL_H_
