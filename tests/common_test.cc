#include <cmath>
#include <limits>

#include "common/bytes.h"
#include "common/float16.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace mistique {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk gone");
  EXPECT_EQ(s.ToString(), "IOError: disk gone");
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MISTIQUE_ASSIGN_OR_RETURN(int h, Half(x));
  MISTIQUE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Hashing

TEST(HashTest, Deterministic) {
  const char data[] = "mistique";
  EXPECT_EQ(Fnv1a64(data, 8), Fnv1a64(data, 8));
  EXPECT_NE(Fnv1a64(data, 8), Fnv1a64(data, 7));
}

TEST(HashTest, SeedChangesHash) {
  const char data[] = "abc";
  EXPECT_NE(Fnv1a64(data, 3, 1), Fnv1a64(data, 3, 2));
}

TEST(HashTest, FingerprintDistinguishesContent) {
  const std::vector<uint8_t> a{1, 2, 3, 4};
  const std::vector<uint8_t> b{1, 2, 3, 5};
  EXPECT_EQ(FingerprintBytes(a.data(), a.size()),
            FingerprintBytes(a.data(), a.size()));
  EXPECT_FALSE(FingerprintBytes(a.data(), a.size()) ==
               FingerprintBytes(b.data(), b.size()));
}

TEST(HashTest, Mix64Spreads) {
  // Nearby inputs should diverge in high bits.
  EXPECT_NE(Mix64(1) >> 32, Mix64(2) >> 32);
  // Zero is the murmur finalizer's (only) fixed point — callers that hash
  // ids always offset by +1 first.
  EXPECT_EQ(Mix64(0), 0u);
  EXPECT_NE(Mix64(1), 0u);
}

// ---------------------------------------------------------------- Float16

TEST(Float16Test, ExactSmallValues) {
  // Values exactly representable in binary16 round-trip losslessly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
}

TEST(Float16Test, Infinity) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e20f))));
  EXPECT_TRUE(std::isinf(
      HalfToFloat(FloatToHalf(std::numeric_limits<float>::infinity()))));
  EXPECT_LT(HalfToFloat(FloatToHalf(-1e20f)), 0);
}

TEST(Float16Test, NaN) {
  EXPECT_TRUE(std::isnan(
      HalfToFloat(FloatToHalf(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Float16Test, SubnormalRoundTrip) {
  const float smallest_normal = 6.103515625e-05f;  // 2^-14
  EXPECT_EQ(HalfToFloat(FloatToHalf(smallest_normal)), smallest_normal);
  const float subnormal = 5.960464477539063e-08f;  // 2^-24
  EXPECT_EQ(HalfToFloat(FloatToHalf(subnormal)), subnormal);
  // Below half-subnormal range flushes to zero.
  EXPECT_EQ(HalfToFloat(FloatToHalf(1e-9f)), 0.0f);
}

class Float16SweepTest : public ::testing::TestWithParam<int> {};

TEST_P(Float16SweepTest, RelativeErrorBounded) {
  // binary16 has 11 significand bits: relative error <= 2^-11 for normals.
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.Uniform(-1000, 1000));
    if (std::abs(v) < 1e-3) continue;
    const float r = HalfToFloat(FloatToHalf(v));
    EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0 / 2048.0) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Float16SweepTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

// ---------------------------------------------------------------- Bytes

TEST(BytesTest, RoundTripScalars) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU16(258);
  w.PutU32(70000);
  w.PutU64(1ull << 40);
  w.PutI64(-5);
  w.PutF32(1.5f);
  w.PutF64(-2.25);
  w.PutString("hello");
  w.PutBlob({9, 8, 7});

  ByteReader r(w.bytes());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  float f32;
  double f64;
  std::string s;
  std::vector<uint8_t> blob;
  ASSERT_OK(r.GetU8(&u8));
  ASSERT_OK(r.GetU16(&u16));
  ASSERT_OK(r.GetU32(&u32));
  ASSERT_OK(r.GetU64(&u64));
  ASSERT_OK(r.GetI64(&i64));
  ASSERT_OK(r.GetF32(&f32));
  ASSERT_OK(r.GetF64(&f64));
  ASSERT_OK(r.GetString(&s));
  ASSERT_OK(r.GetBlob(&blob));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 258);
  EXPECT_EQ(u32, 70000u);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i64, -5);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(blob, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, TruncationIsCorruption) {
  ByteWriter w;
  w.PutU32(1);
  ByteReader r(w.bytes());
  uint64_t v;
  EXPECT_EQ(r.GetU64(&v).code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringIsCorruption) {
  ByteWriter w;
  w.PutU32(100);  // Claims 100 bytes follow; none do.
  ByteReader r(w.bytes());
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace mistique
