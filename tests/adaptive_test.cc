#include "core/mistique.h"
#include "gtest/gtest.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "test_util.h"

namespace mistique {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("adaptive");
    ZillowConfig config;
    config.num_properties = 400;
    config.num_train = 300;
    config.num_test = 100;
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir_->path()));
  }

  MistiqueOptions Options(double gamma_min) {
    MistiqueOptions opts;
    opts.store.directory = dir_->path() + "/store" + std::to_string(n_++);
    opts.strategy = StorageStrategy::kAdaptive;
    opts.gamma_min = gamma_min;
    opts.row_block_size = 128;
    // Deterministic cost model so γ crossings are reproducible.
    opts.cost.read_bytes_per_sec = 200e6;
    return opts;
  }

  std::unique_ptr<TempDir> dir_;
  int n_ = 0;
};

TEST_F(AdaptiveTest, LoggingStoresNothing) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(100.0)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK_AND_ASSIGN(ModelId id, mq.LogPipeline(pipeline.get(), "zillow"));
  EXPECT_EQ(mq.StorageFootprintBytes(), 0u);
  ASSERT_OK_AND_ASSIGN(const ModelInfo* model, mq.metadata().GetModel(id));
  for (const IntermediateInfo& interm : model->intermediates) {
    for (const ColumnInfo& col : interm.columns) {
      EXPECT_FALSE(col.materialized);
    }
  }
}

TEST_F(AdaptiveTest, FirstQueriesRerun) {
  Mistique mq;
  // Effectively infinite γ threshold: never materialize.
  ASSERT_OK(mq.Open(Options(1e18)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(FetchResult result, mq.Fetch(req));
    EXPECT_FALSE(result.used_read);
    EXPECT_FALSE(result.materialized_now);
  }
  EXPECT_EQ(mq.StorageFootprintBytes(), 0u);
}

TEST_F(AdaptiveTest, RepeatedQueriesTriggerMaterialization) {
  Mistique mq;
  // Tiny γ threshold: the first query's γ crosses it immediately for any
  // intermediate whose rerun beats read.
  ASSERT_OK(mq.Open(Options(1e-6)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";

  ASSERT_OK_AND_ASSIGN(FetchResult first, mq.Fetch(req));
  EXPECT_FALSE(first.used_read);
  EXPECT_TRUE(first.materialized_now);
  EXPECT_GT(mq.StorageFootprintBytes(), 0u);

  // Later queries read the materialized copy and match the rerun values.
  ASSERT_OK_AND_ASSIGN(FetchResult second, mq.Fetch(req));
  EXPECT_TRUE(second.used_read);
  ASSERT_EQ(second.columns[0].size(), first.columns[0].size());
  for (size_t i = 0; i < first.columns[0].size(); ++i) {
    EXPECT_EQ(second.columns[0][i], first.columns[0][i]);
  }
}

TEST_F(AdaptiveTest, GammaAccumulatesAcrossQueries) {
  Mistique mq;
  // Threshold set after logging from this instance's own calibrated
  // metadata, so the γ crossings are deterministic.
  ASSERT_OK(mq.Open(Options(1e18)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK_AND_ASSIGN(ModelId id, mq.LogPipeline(pipeline.get(), "zillow"));

  // γ of the first query for this intermediate; threshold at ~2.5γ makes
  // the third query trigger (Eq. 5's numerator grows per query).
  ASSERT_OK_AND_ASSIGN(const ModelInfo* model, mq.metadata().GetModel(id));
  const IntermediateInfo* target = nullptr;
  for (const auto& interm : model->intermediates) {
    if (interm.name == "pred_test") target = &interm;
  }
  ASSERT_NE(target, nullptr);
  IntermediateInfo probe = *target;
  probe.n_query = 1;
  const double gamma1 = mq.cost_model().Gamma(
      *model, probe, probe.num_rows * probe.columns.size() * 8);
  ASSERT_GT(gamma1, 0);
  mq.set_gamma_min(2.5 * gamma1);

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  ASSERT_OK_AND_ASSIGN(FetchResult q1, mq.Fetch(req));
  EXPECT_FALSE(q1.materialized_now);  // γ = 1x < 2.5x.
  ASSERT_OK_AND_ASSIGN(FetchResult q2, mq.Fetch(req));
  EXPECT_FALSE(q2.materialized_now);  // γ = 2x < 2.5x.
  ASSERT_OK_AND_ASSIGN(FetchResult q3, mq.Fetch(req));
  EXPECT_TRUE(q3.materialized_now);  // γ = 3x > 2.5x.
}

TEST_F(AdaptiveTest, MaterializationIsPerColumn) {
  // Alg. 4 decides per column: repeatedly querying one column must
  // materialize only that column, leaving its siblings unmaterialized.
  Mistique mq;
  ASSERT_OK(mq.Open(Options(1e-6)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK_AND_ASSIGN(ModelId id, mq.LogPipeline(pipeline.get(), "zillow"));

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "train_merged";
  req.columns = {"taxamount"};
  ASSERT_OK_AND_ASSIGN(FetchResult result, mq.Fetch(req));
  EXPECT_TRUE(result.materialized_now);

  ASSERT_OK_AND_ASSIGN(const IntermediateInfo* interm,
                       std::as_const(mq.metadata())
                           .FindIntermediate(id, "train_merged"));
  size_t materialized = 0;
  for (const ColumnInfo& col : interm->columns) {
    if (col.materialized) {
      materialized++;
      EXPECT_EQ(col.name, "taxamount");
    }
  }
  EXPECT_EQ(materialized, 1u);

  // The hot column now reads; a sibling column still re-runs.
  ASSERT_OK_AND_ASSIGN(FetchResult hot, mq.Fetch(req));
  EXPECT_TRUE(hot.used_read);
  req.columns = {"bedroomcnt"};
  req.force_read = false;
  ASSERT_OK_AND_ASSIGN(FetchResult cold, mq.Fetch(req));
  EXPECT_FALSE(cold.used_read);
}

TEST_F(AdaptiveTest, ForceReadOnUnmaterializedFails) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(1e18)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  req.force_read = true;
  EXPECT_EQ(mq.Fetch(req).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mistique
