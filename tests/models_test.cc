#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "pipeline/models.h"
#include "test_util.h"

namespace mistique {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// y = 3*x0 - 2*x1 + 1 + noise.
void MakeLinearData(size_t n, DataFrame* x, std::vector<double>* y,
                    double noise = 0.01, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> x0(n), x1(n), x2(n);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.Gaussian();
    x1[i] = rng.Gaussian();
    x2[i] = rng.Gaussian();  // Irrelevant feature.
    (*y)[i] = 3.0 * x0[i] - 2.0 * x1[i] + 1.0 + noise * rng.Gaussian();
  }
  (void)x->AddColumn("x0", std::move(x0));
  (void)x->AddColumn("x1", std::move(x1));
  (void)x->AddColumn("x2", std::move(x2));
}

TEST(ElasticNetTest, RecoversLinearModel) {
  DataFrame x;
  std::vector<double> y;
  MakeLinearData(2000, &x, &y);
  ElasticNetParams params;
  params.alpha = 1e-4;
  params.l1_ratio = 0.5;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ElasticNetModel> model,
                       ElasticNetModel::Fit(x, y, params));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pred, model->Predict(x));
  double err = 0;
  for (size_t i = 0; i < y.size(); ++i) err += std::abs(pred[i] - y[i]);
  EXPECT_LT(err / static_cast<double>(y.size()), 0.05);
}

TEST(ElasticNetTest, StrongL1ZeroesIrrelevantFeature) {
  DataFrame x;
  std::vector<double> y;
  MakeLinearData(2000, &x, &y, 0.01, 2);
  ElasticNetParams params;
  params.alpha = 0.05;
  params.l1_ratio = 1.0;  // Pure lasso.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ElasticNetModel> model,
                       ElasticNetModel::Fit(x, y, params));
  // x2 carries no signal: lasso should zero it.
  EXPECT_EQ(model->weights()[2], 0.0);
  EXPECT_GT(std::abs(model->weights()[0]), 0.1);
}

TEST(ElasticNetTest, HandlesNaNByImputation) {
  DataFrame x;
  std::vector<double> y;
  MakeLinearData(500, &x, &y, 0.01, 3);
  // Punch holes in x0.
  ASSERT_OK_AND_ASSIGN(std::vector<double>* x0, x.MutableColumn("x0"));
  (*x0)[5] = kNaN;
  (*x0)[99] = kNaN;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ElasticNetModel> model,
                       ElasticNetModel::Fit(x, y, ElasticNetParams{}));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pred, model->Predict(x));
  for (double p : pred) EXPECT_FALSE(std::isnan(p));
}

TEST(ElasticNetTest, EmptyInputRejected) {
  DataFrame x;
  EXPECT_FALSE(ElasticNetModel::Fit(x, {}, ElasticNetParams{}).ok());
}

TEST(ElasticNetTest, SizeMismatchRejected) {
  DataFrame x;
  (void)x.AddColumn("a", {1, 2, 3});
  EXPECT_FALSE(ElasticNetModel::Fit(x, {1.0}, ElasticNetParams{}).ok());
}

// y = nonlinear function, needs trees.
void MakeNonlinearData(size_t n, DataFrame* x, std::vector<double>* y,
                       uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<double> x0(n), x1(n);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.Uniform(-2, 2);
    x1[i] = rng.Uniform(-2, 2);
    (*y)[i] = (x0[i] > 0 ? 5.0 : -5.0) + std::abs(x1[i]) +
              0.05 * rng.Gaussian();
  }
  (void)x->AddColumn("x0", std::move(x0));
  (void)x->AddColumn("x1", std::move(x1));
}

class GbtGrowthTest : public ::testing::TestWithParam<TreeGrowth> {};

TEST_P(GbtGrowthTest, LearnsNonlinearSignal) {
  DataFrame x;
  std::vector<double> y;
  MakeNonlinearData(3000, &x, &y);
  GbtParams params;
  params.growth = GetParam();
  params.n_estimators = 40;
  params.learning_rate = 0.2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> model,
                       GbtModel::Fit(x, y, params));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pred, model->Predict(x));

  // Baseline: predicting the mean has MAE ~ 4.5; trees must beat it 5x.
  double err = 0;
  for (size_t i = 0; i < y.size(); ++i) err += std::abs(pred[i] - y[i]);
  err /= static_cast<double>(y.size());
  EXPECT_LT(err, 0.9) << "growth=" << static_cast<int>(GetParam());
  EXPECT_EQ(model->num_trees(), 40u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, GbtGrowthTest,
                         ::testing::Values(TreeGrowth::kLevelWise,
                                           TreeGrowth::kLeafWise));

TEST(GbtTest, NaNRoutesLeftWithoutCrashing) {
  DataFrame x;
  std::vector<double> y;
  MakeNonlinearData(1000, &x, &y, 6);
  ASSERT_OK_AND_ASSIGN(std::vector<double>* x0, x.MutableColumn("x0"));
  for (size_t i = 0; i < 100; ++i) (*x0)[i * 3] = kNaN;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> model,
                       GbtModel::Fit(x, y, GbtParams{}));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pred, model->Predict(x));
  for (double p : pred) EXPECT_FALSE(std::isnan(p));
}

TEST(GbtTest, PredictMapsFeaturesByName) {
  DataFrame x;
  std::vector<double> y;
  MakeNonlinearData(800, &x, &y, 7);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> model,
                       GbtModel::Fit(x, y, GbtParams{}));

  // Same columns, different order: predictions must be identical.
  ASSERT_OK_AND_ASSIGN(DataFrame shuffled, x.Select({"x1", "x0"}));
  ASSERT_OK_AND_ASSIGN(std::vector<double> p1, model->Predict(x));
  ASSERT_OK_AND_ASSIGN(std::vector<double> p2, model->Predict(shuffled));
  EXPECT_EQ(p1, p2);

  // Missing feature rejected.
  ASSERT_OK_AND_ASSIGN(DataFrame partial, x.Select({"x0"}));
  EXPECT_FALSE(model->Predict(partial).ok());
}

TEST(GbtTest, BaggingAndFeatureSampling) {
  DataFrame x;
  std::vector<double> y;
  MakeNonlinearData(1500, &x, &y, 8);
  GbtParams params;
  params.bagging_fraction = 0.7;
  params.sub_feature = 0.5;
  params.n_estimators = 30;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> model,
                       GbtModel::Fit(x, y, params));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pred, model->Predict(x));
  double err = 0;
  for (size_t i = 0; i < y.size(); ++i) err += std::abs(pred[i] - y[i]);
  EXPECT_LT(err / static_cast<double>(y.size()), 2.0);
}

TEST(GbtTest, DeterministicForFixedSeed) {
  DataFrame x;
  std::vector<double> y;
  MakeNonlinearData(500, &x, &y, 9);
  GbtParams params;
  params.bagging_fraction = 0.8;
  params.seed = 42;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> a, GbtModel::Fit(x, y, params));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> b, GbtModel::Fit(x, y, params));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pa, a->Predict(x));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pb, b->Predict(x));
  EXPECT_EQ(pa, pb);
}

TEST(GbtTest, L1LeafShrinkageReducesLeafMagnitude) {
  DataFrame x;
  std::vector<double> y;
  MakeNonlinearData(800, &x, &y, 10);
  GbtParams plain;
  plain.n_estimators = 1;
  plain.learning_rate = 1.0;
  GbtParams shrunk = plain;
  shrunk.alpha_l1 = 1000.0;  // Strong L1: leaves pull toward zero.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> a, GbtModel::Fit(x, y, plain));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<GbtModel> b, GbtModel::Fit(x, y, shrunk));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pa, a->Predict(x));
  ASSERT_OK_AND_ASSIGN(std::vector<double> pb, b->Predict(x));
  double spread_a = 0, spread_b = 0;
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    spread_a += std::abs(pa[i] - mean);
    spread_b += std::abs(pb[i] - mean);
  }
  EXPECT_LT(spread_b, spread_a);
}

}  // namespace
}  // namespace mistique
