#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "pipeline/csv.h"
#include "pipeline/stages.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "test_util.h"

namespace mistique {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

ZillowConfig SmallZillow() {
  ZillowConfig config;
  config.num_properties = 600;
  config.num_train = 400;
  config.num_test = 150;
  return config;
}

// ------------------------------------------------------------- Zillow gen

TEST(ZillowTest, ShapesMatchConfig) {
  const ZillowDataset data = GenerateZillow(SmallZillow());
  EXPECT_EQ(data.properties.num_rows(), 600u);
  EXPECT_EQ(data.train.num_rows(), 400u);
  EXPECT_EQ(data.test.num_rows(), 150u);
  EXPECT_GT(data.properties.num_cols(), 15u);
  EXPECT_TRUE(data.properties.HasColumn("parcelid"));
  EXPECT_TRUE(data.train.HasColumn("logerror"));
}

TEST(ZillowTest, Deterministic) {
  const ZillowDataset a = GenerateZillow(SmallZillow());
  const ZillowDataset b = GenerateZillow(SmallZillow());
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* ea,
                       a.train.Column("logerror"));
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* eb,
                       b.train.Column("logerror"));
  EXPECT_EQ(*ea, *eb);
}

TEST(ZillowTest, HasMissingness) {
  const ZillowDataset data = GenerateZillow(SmallZillow());
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* quality,
                       data.properties.Column("buildingqualitytypeid"));
  size_t missing = 0;
  for (double v : *quality) missing += std::isnan(v);
  EXPECT_GT(missing, 100u);  // ~33% of 600.
  EXPECT_LT(missing, 320u);
}

TEST(ZillowTest, CsvFilesWritten) {
  TempDir dir("zillow_csv");
  const ZillowDataset data = GenerateZillow(SmallZillow());
  ASSERT_OK(WriteZillowCsvs(data, dir.path()));
  ASSERT_OK_AND_ASSIGN(DataFrame props,
                       ReadCsv(dir.path() + "/properties.csv"));
  EXPECT_EQ(props.num_rows(), 600u);
  EXPECT_EQ(props.num_cols(), data.properties.num_cols());
}

// ---------------------------------------------------------------- Stages

class StagesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("stages");
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(SmallZillow()), dir_->path()));
  }
  std::unique_ptr<TempDir> dir_;
  PipelineContext ctx_;
};

TEST_F(StagesTest, ReadCsvLoadsFrame) {
  ReadCsvStage stage("properties", dir_->path() + "/properties.csv");
  ASSERT_OK(stage.Execute(&ctx_).status());
  EXPECT_EQ(ctx_.frames["properties"].num_rows(), 600u);
}

TEST_F(StagesTest, JoinMergesOnParcelid) {
  ReadCsvStage props("properties", dir_->path() + "/properties.csv");
  ReadCsvStage train("train", dir_->path() + "/train.csv");
  ASSERT_OK(props.Execute(&ctx_).status());
  ASSERT_OK(train.Execute(&ctx_).status());
  JoinStage join("train_merged", "train", "properties", "parcelid");
  ASSERT_OK(join.Execute(&ctx_).status());
  const DataFrame& merged = ctx_.frames["train_merged"];
  EXPECT_EQ(merged.num_rows(), 400u);
  EXPECT_TRUE(merged.HasColumn("logerror"));
  EXPECT_TRUE(merged.HasColumn("taxamount"));
}

TEST_F(StagesTest, SelectColumnPublishesSeries) {
  DataFrame f;
  (void)f.AddColumn("logerror", {0.1, 0.2});
  ctx_.frames["train_merged"] = f;
  SelectColumnStage stage("y_frame", "train_merged", "logerror", "y");
  ASSERT_OK(stage.Execute(&ctx_).status());
  ASSERT_TRUE(ctx_.series.count("y"));
  EXPECT_EQ(ctx_.series["y"], (std::vector<double>{0.1, 0.2}));
}

TEST_F(StagesTest, FillNaUsesFittedMedians) {
  DataFrame f;
  (void)f.AddColumn("a", {1.0, kNaN, 3.0, 5.0, kNaN});
  ctx_.frames["in"] = f;
  FillNaStage stage("out", "in");
  ASSERT_OK(stage.Execute(&ctx_).status());
  const DataFrame& out = ctx_.frames["out"];
  EXPECT_EQ(out.at(1, 0), 3.0);  // Median of {1,3,5}.
  EXPECT_EQ(out.at(4, 0), 3.0);

  // Second execution on different data reuses the fitted median.
  DataFrame g;
  (void)g.AddColumn("a", {kNaN, 100.0});
  ctx_.frames["in"] = g;
  ASSERT_OK(stage.Execute(&ctx_).status());
  EXPECT_EQ(ctx_.frames["out"].at(0, 0), 3.0);
}

TEST_F(StagesTest, OneHotExpandsCategoricals) {
  DataFrame f;
  (void)f.AddColumn("cat", {0, 1, 2, 1});
  (void)f.AddColumn("num", {5, 6, 7, 8});
  ctx_.frames["in"] = f;
  OneHotStage stage("out", "in", {"cat"});
  ASSERT_OK(stage.Execute(&ctx_).status());
  const DataFrame& out = ctx_.frames["out"];
  EXPECT_FALSE(out.HasColumn("cat"));
  EXPECT_TRUE(out.HasColumn("cat_0"));
  EXPECT_TRUE(out.HasColumn("cat_1"));
  EXPECT_TRUE(out.HasColumn("cat_2"));
  EXPECT_TRUE(out.HasColumn("num"));
  EXPECT_EQ(out.at(1, 1), 1.0);  // Row 1 has cat=1 -> cat_1 = 1.
  EXPECT_EQ(out.at(1, 0), 0.0);
}

TEST_F(StagesTest, TrainTestSplitPartitionsRows) {
  DataFrame x;
  std::vector<double> col(100);
  for (size_t i = 0; i < 100; ++i) col[i] = static_cast<double>(i);
  (void)x.AddColumn("f", col);
  ctx_.frames["x_all"] = x;
  ctx_.series["y"] = col;
  TrainTestSplitStage stage("x_train", "x_all", "y", "x_valid", "y_train",
                            "y_valid", 0.8, 3);
  ASSERT_OK(stage.Execute(&ctx_).status());
  const size_t train_n = ctx_.frames["x_train"].num_rows();
  const size_t valid_n = ctx_.frames["x_valid"].num_rows();
  EXPECT_EQ(train_n + valid_n, 100u);
  EXPECT_GT(train_n, 60u);
  EXPECT_EQ(ctx_.series["y_train"].size(), train_n);
  EXPECT_EQ(ctx_.series["y_valid"].size(), valid_n);
}

TEST_F(StagesTest, RecencyNeighborhoodResidential) {
  DataFrame f;
  (void)f.AddColumn("yearbuilt", {2000, 1950, kNaN});
  (void)f.AddColumn("latitude", {34.0, 34.2, 34.4});
  (void)f.AddColumn("longitude", {-118.0, -118.2, -118.4});
  (void)f.AddColumn("propertylandusetypeid", {0, 5, 1});
  ctx_.frames["in"] = f;

  ConstructionRecencyStage recency("r1", "in");
  ASSERT_OK(recency.Execute(&ctx_).status());
  EXPECT_EQ(ctx_.frames["r1"].at(0, 4), 16.0);
  EXPECT_EQ(ctx_.frames["r1"].at(1, 4), 66.0);
  EXPECT_TRUE(std::isnan(ctx_.frames["r1"].at(2, 4)));

  NeighborhoodStage hood("r2", "r1", 4);
  ASSERT_OK(hood.Execute(&ctx_).status());
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* codes,
                       ctx_.frames["r2"].Column("neighborhood"));
  for (double c : *codes) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 16);
  }
  EXPECT_NE((*codes)[0], (*codes)[2]);  // Opposite grid corners.

  IsResidentialStage res("r3", "r2", {0, 1, 2});
  ASSERT_OK(res.Execute(&ctx_).status());
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* flags,
                       ctx_.frames["r3"].Column("is_residential"));
  EXPECT_EQ(*flags, (std::vector<double>{1, 0, 1}));
}

TEST_F(StagesTest, TrainFitsOncePredictUsesModel) {
  DataFrame x;
  std::vector<double> f(200), y(200);
  Rng rng(1);
  for (size_t i = 0; i < 200; ++i) {
    f[i] = rng.Gaussian();
    y[i] = 2.0 * f[i];
  }
  (void)x.AddColumn("f", f);
  ctx_.frames["x_train"] = x;
  ctx_.frames["x_other"] = x;
  ctx_.series["y_train"] = y;

  ElasticNetParams params;
  params.alpha = 1e-5;
  TrainModelStage train("train_pred", LearnerKind::kElasticNet, "x_train",
                        "y_train", "enet", params);
  ASSERT_OK(train.Execute(&ctx_).status());
  ASSERT_TRUE(ctx_.models.count("enet"));

  PredictStage predict("pred", "x_other", {"enet"});
  ASSERT_OK(predict.Execute(&ctx_).status());
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* pred,
                       ctx_.frames["pred"].Column("pred"));
  EXPECT_NEAR((*pred)[0], y[0], 0.1);

  // Re-execution must reuse the fitted model even if y is gone.
  ctx_.series.erase("y_train");
  ASSERT_OK(train.Execute(&ctx_).status());
}

TEST_F(StagesTest, EnsemblePredictWeights) {
  DataFrame x;
  (void)x.AddColumn("f", {1.0, 2.0});
  ctx_.frames["x"] = x;
  ctx_.frames["x_train"] = x;
  ctx_.series["y"] = {10.0, 10.0};

  // Two constant models via ElasticNet on constant targets.
  TrainModelStage m1("p1", LearnerKind::kElasticNet, "x_train", "y", "m1");
  ASSERT_OK(m1.Execute(&ctx_).status());
  ctx_.series["y"] = {20.0, 20.0};
  TrainModelStage m2("p2", LearnerKind::kElasticNet, "x_train", "y", "m2");
  ASSERT_OK(m2.Execute(&ctx_).status());

  PredictStage blend("pred", "x", {"m1", "m2"}, {0.25, 0.75});
  ASSERT_OK(blend.Execute(&ctx_).status());
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* pred,
                       ctx_.frames["pred"].Column("pred"));
  EXPECT_NEAR((*pred)[0], 0.25 * 10 + 0.75 * 20, 0.5);
}

// ------------------------------------------------------------- Templates

class TemplatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("templates");
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(SmallZillow()), dir_->path()));
  }
  std::unique_ptr<TempDir> dir_;
};

TEST_F(TemplatesTest, AllFiftyPipelinesBuild) {
  ASSERT_OK_AND_ASSIGN(auto pipelines, BuildAllZillowPipelines(dir_->path()));
  EXPECT_EQ(pipelines.size(), 50u);
  EXPECT_EQ(pipelines[0]->name(), "P1_v0");
  EXPECT_EQ(pipelines[49]->name(), "P10_v4");
  // Stage counts land in the paper's 9-19 range.
  for (const auto& p : pipelines) {
    EXPECT_GE(p->num_stages(), 9u) << p->name();
    EXPECT_LE(p->num_stages(), 19u) << p->name();
  }
}

TEST_F(TemplatesTest, InvalidIdsRejected) {
  EXPECT_FALSE(BuildZillowPipeline(0, 0, dir_->path()).ok());
  EXPECT_FALSE(BuildZillowPipeline(11, 0, dir_->path()).ok());
  EXPECT_FALSE(BuildZillowPipeline(1, 5, dir_->path()).ok());
}

class TemplateRunTest : public ::testing::TestWithParam<int> {};

TEST_P(TemplateRunTest, RunsEndToEnd) {
  TempDir dir("template_run");
  ASSERT_OK(WriteZillowCsvs(GenerateZillow(SmallZillow()), dir.path()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(GetParam(), 0, dir.path()));
  PipelineContext ctx;
  size_t stages_seen = 0;
  ASSERT_OK(pipeline->Run(&ctx, -1,
                          [&](size_t, const DataFrame& frame, double) {
                            stages_seen++;
                            EXPECT_GT(frame.num_cols(), 0u);
                            return Status::OK();
                          }));
  EXPECT_EQ(stages_seen, pipeline->num_stages());

  // Final predictions exist for validation and test rows.
  ASSERT_TRUE(ctx.frames.count("pred_valid"));
  ASSERT_TRUE(ctx.frames.count("pred_test"));
  EXPECT_EQ(ctx.frames["pred_test"].num_rows(), 150u);
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* pred,
                       ctx.frames["pred_test"].Column("pred"));
  for (double p : *pred) EXPECT_FALSE(std::isnan(p));
}

INSTANTIATE_TEST_SUITE_P(Templates, TemplateRunTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST_F(TemplatesTest, RerunReproducesIntermediates) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  PipelineContext first, second;
  ASSERT_OK(pipeline->Run(&first));
  ASSERT_OK(pipeline->Run(&second));
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* p1,
                       first.frames["pred_test"].Column("pred"));
  ASSERT_OK_AND_ASSIGN(const std::vector<double>* p2,
                       second.frames["pred_test"].Column("pred"));
  EXPECT_EQ(*p1, *p2);
}

}  // namespace
}  // namespace mistique
