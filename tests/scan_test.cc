#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "core/mistique.h"
#include "gtest/gtest.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "obs/trace.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "scan/packed_view.h"
#include "scan/scan_kernels.h"
#include "storage/column_chunk.h"
#include "test_util.h"

namespace mistique {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("scan");
    ZillowConfig config;
    config.num_properties = 600;
    config.num_train = 450;
    config.num_test = 150;
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir_->path()));
  }

  MistiqueOptions Options(StorageStrategy strategy) {
    MistiqueOptions opts;
    opts.store.directory = dir_->path() + "/store" + std::to_string(n_++);
    opts.strategy = strategy;
    opts.row_block_size = 64;
    return opts;
  }

  ScanRequest BaseScan() {
    ScanRequest req;
    req.project = "zillow";
    req.model = "P1_v0";
    req.intermediate = "train_merged";
    req.predicate_column = "yearbuilt";
    return req;
  }

  std::unique_ptr<TempDir> dir_;
  int n_ = 0;
};

TEST_F(ScanTest, MatchesBruteForceFilter) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  ASSERT_OK(mq.Flush());

  ScanRequest req = BaseScan();
  req.lo = 1950;
  req.hi = 1970;
  req.columns = {"taxamount"};
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));

  // Brute force over the full fetch.
  FetchRequest full;
  full.project = "zillow";
  full.model = "P1_v0";
  full.intermediate = "train_merged";
  full.columns = {"yearbuilt", "taxamount"};
  ASSERT_OK_AND_ASSIGN(FetchResult all, mq.Fetch(full));
  std::vector<uint64_t> expect_rows;
  std::vector<double> expect_tax;
  for (size_t i = 0; i < all.columns[0].size(); ++i) {
    const double v = all.columns[0][i];
    if (!std::isnan(v) && v >= 1950 && v <= 1970) {
      expect_rows.push_back(i);
      expect_tax.push_back(all.columns[1][i]);
    }
  }
  EXPECT_EQ(scan.row_ids, expect_rows);
  ASSERT_EQ(scan.columns.size(), 1u);
  EXPECT_EQ(scan.columns[0], expect_tax);
  EXPECT_FALSE(scan.row_ids.empty());
}

TEST_F(ScanTest, ZoneMapsPruneBlocks) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  // parcelid is monotonically distributed across the properties frame, so
  // a narrow parcelid range prunes most blocks.
  ScanRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "properties";
  req.predicate_column = "parcelid";
  req.lo = 10000010;
  req.hi = 10000030;
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_EQ(scan.row_ids.size(), 21u);
  EXPECT_GT(scan.blocks_pruned, 0u);
  EXPECT_LT(scan.blocks_scanned, scan.blocks_pruned);
  EXPECT_EQ(scan.blocks_scanned + scan.blocks_pruned,
            (600 + 63) / 64);  // All blocks accounted for.
}

TEST_F(ScanTest, EmptyRangeAndValidation) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  ScanRequest req = BaseScan();
  req.lo = 5000;  // No home built in year 5000.
  req.hi = 6000;
  req.columns = {"taxamount"};
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_TRUE(scan.row_ids.empty());
  EXPECT_EQ(scan.columns.size(), 1u);
  EXPECT_TRUE(scan.columns[0].empty());

  req.lo = 10;
  req.hi = 5;
  EXPECT_EQ(mq.Scan(req).status().code(), StatusCode::kInvalidArgument);

  req = BaseScan();
  req.predicate_column = "ghost";
  EXPECT_EQ(mq.Scan(req).status().code(), StatusCode::kNotFound);
}

TEST_F(ScanTest, UnmaterializedFallsBackToRerun) {
  Mistique mq;
  MistiqueOptions opts = Options(StorageStrategy::kAdaptive);
  opts.gamma_min = 1e18;
  ASSERT_OK(mq.Open(opts));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  ScanRequest req = BaseScan();
  req.lo = 1950;
  req.hi = 1970;
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_FALSE(scan.row_ids.empty());
  EXPECT_EQ(scan.blocks_pruned, 0u);  // No zone maps without storage.
}

TEST_F(ScanTest, NeuronActivationScanOnDnn) {
  // The paper's example: find examples whose neuron activation exceeds a
  // threshold, on a quantized (8BIT_QT) store — the predicate evaluates
  // on reconstructed values.
  CifarConfig config;
  config.num_examples = 128;
  const CifarData data = GenerateCifar(config);
  auto input = std::make_shared<Tensor>(data.images);

  Mistique mq;
  MistiqueOptions opts = Options(StorageStrategy::kDedup);
  opts.dnn_scheme = QuantScheme::kKBit;
  ASSERT_OK(mq.Open(opts));
  DnnScaleConfig scale;
  scale.cnn_scale = 0.2;
  auto net = BuildCifarCnn(scale);
  ASSERT_OK(mq.LogNetwork(net.get(), input, "cifar", "cnn").status());
  ASSERT_OK(mq.Flush());

  // Pick a live neuron from fc1 and scan for its top activations.
  FetchRequest probe;
  probe.project = "cifar";
  probe.model = "cnn";
  probe.intermediate = "layer7";
  ASSERT_OK_AND_ASSIGN(FetchResult fc1, mq.Fetch(probe));
  size_t busiest = 0;
  double best_max = -1;
  for (size_t n = 0; n < fc1.columns.size(); ++n) {
    const double mx = *std::max_element(fc1.columns[n].begin(),
                                        fc1.columns[n].end());
    if (mx > best_max) {
      best_max = mx;
      busiest = n;
    }
  }
  ASSERT_GT(best_max, 0);

  ScanRequest req;
  req.project = "cifar";
  req.model = "cnn";
  req.intermediate = "layer7";
  req.predicate_column = "n" + std::to_string(busiest);
  req.lo = best_max * 0.5;
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_FALSE(scan.row_ids.empty());
  // Every returned row's (reconstructed) activation satisfies the bound.
  for (uint64_t row : scan.row_ids) {
    EXPECT_GE(fc1.columns[busiest][row], req.lo);
  }
}

// ---------------------------------------------------------------------
// Kernel-level properties: packed kernels vs naive per-field evaluation.
// ---------------------------------------------------------------------

TEST(ScanKernelsTest, PackedViewQualification) {
  // kPackedW (any k<8), kUInt8, and kBit qualify; the legacy
  // bit-contiguous kPacked and float chunks keep the decode path.
  const std::vector<uint8_t> bins = {0, 1, 2, 3, 3, 2, 1, 0, 1};
  for (int bits = 1; bits <= 7; ++bits) {
    std::vector<uint8_t> fit(bins.size());
    const uint8_t max_bin = static_cast<uint8_t>((1u << bits) - 1);
    for (size_t i = 0; i < bins.size(); ++i)
      fit[i] = std::min(bins[i], max_bin);
    const ColumnChunk wchunk = ColumnChunk::FromPackedWords(fit, bits);
    EXPECT_EQ(wchunk.dtype(), DType::kPackedW);
    EXPECT_TRUE(scan::PackedView::Qualifies(wchunk)) << bits;
    const ColumnChunk legacy = ColumnChunk::FromPackedBins(fit, bits);
    EXPECT_FALSE(scan::PackedView::Qualifies(legacy)) << bits;
    // Both layouts decode identically.
    auto view = scan::PackedView::Of(wchunk);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->bits, static_cast<unsigned>(bits));
    EXPECT_EQ(view->n, fit.size());
    for (size_t i = 0; i < fit.size(); ++i) EXPECT_EQ(view->Get(i), fit[i]);
  }
  EXPECT_TRUE(scan::PackedView::Qualifies(ColumnChunk::FromBins(bins)));
  EXPECT_TRUE(scan::PackedView::Qualifies(
      ColumnChunk::FromBits({true, false, true})));
  EXPECT_FALSE(scan::PackedView::Qualifies(
      ColumnChunk::FromDoubles({1.0, 2.0})));
}

TEST(ScanKernelsTest, RandomizedKernelsMatchNaive) {
  TestSeed seed(20260808);
  Rng rng(seed.value());
  // Widths 1..8, random lengths including empty, word-multiple, and
  // ragged tails; random and degenerate (constant) payloads.
  for (int bits = 1; bits <= 8; ++bits) {
    const uint64_t max_bin = (1ull << bits) - 1;
    const size_t per_word = 64 / bits;
    for (int trial = 0; trial < 40; ++trial) {
      size_t n;
      switch (trial % 4) {
        case 0: n = rng.NextBelow(300); break;
        case 1: n = per_word * (1 + rng.NextBelow(4)); break;  // exact words
        case 2: n = per_word * (1 + rng.NextBelow(4)) + 1; break;  // ragged
        case 3: n = 1 + rng.NextBelow(3); break;  // sub-word
      }
      std::vector<uint8_t> bins(n);
      const bool constant = trial % 5 == 0;  // min==max zone-map shape
      const uint8_t fill = static_cast<uint8_t>(rng.NextBelow(max_bin + 1));
      for (uint8_t& b : bins) {
        b = constant ? fill
                     : static_cast<uint8_t>(rng.NextBelow(max_bin + 1));
      }
      const ColumnChunk chunk =
          bits == 8 ? ColumnChunk::FromBins(bins)
                    : ColumnChunk::FromPackedWords(bins, bits);
      auto view = scan::PackedView::Of(chunk);
      ASSERT_TRUE(view.has_value());
      const uint64_t base = rng.NextBelow(1 << 20);

      // POINTQ: random range plus the edge ranges.
      const std::vector<std::pair<uint64_t, uint64_t>> ranges = {
          {rng.NextBelow(max_bin + 1), rng.NextBelow(max_bin + 1)},
          {0, max_bin},          // none filtered
          {max_bin, max_bin},    // top bin only
          {0, 0},                // bottom bin only
          {max_bin, 0},          // empty (lo > hi)
      };
      for (const auto& [lo, hi] : ranges) {
        std::vector<uint64_t> got;
        scan::CmpPacked(*view, lo, hi, base, &got);
        std::vector<uint64_t> want;
        for (size_t i = 0; i < n; ++i) {
          if (bins[i] >= lo && bins[i] <= hi) want.push_back(base + i);
        }
        ASSERT_EQ(got, want) << "bits=" << bits << " lo=" << lo
                             << " hi=" << hi << " n=" << n;
      }

      // TOPK vs sorting (bin desc, row asc).
      const size_t k = 1 + rng.NextBelow(8);
      scan::TopKAccumulator acc(k);
      scan::TopKPacked(*view, base, &acc);
      std::vector<scan::TopKAccumulator::Entry> got = acc.Take();
      std::vector<std::pair<uint64_t, uint64_t>> ref;
      for (size_t i = 0; i < n; ++i) ref.push_back({bins[i], base + i});
      std::sort(ref.begin(), ref.end(), [](const auto& a, const auto& b) {
        return a.first != b.first ? a.first > b.first : a.second < b.second;
      });
      ref.resize(std::min(ref.size(), k));
      ASSERT_EQ(got.size(), ref.size()) << "bits=" << bits << " n=" << n;
      for (size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(got[i].bin, ref[i].first) << "bits=" << bits << " i=" << i;
        ASSERT_EQ(got[i].row, ref[i].second) << "bits=" << bits << " i=" << i;
      }

      // COL_DIFF vs per-field compare (mutate a random subset).
      std::vector<uint8_t> other = bins;
      for (uint8_t& b : other) {
        if (rng.NextBelow(4) == 0)
          b = static_cast<uint8_t>(rng.NextBelow(max_bin + 1));
      }
      const ColumnChunk chunk_b =
          bits == 8 ? ColumnChunk::FromBins(other)
                    : ColumnChunk::FromPackedWords(other, bits);
      auto view_b = scan::PackedView::Of(chunk_b);
      ASSERT_TRUE(view_b.has_value());
      std::vector<uint64_t> diff;
      scan::ColDiffPacked(*view, *view_b, base, &diff);
      std::vector<uint64_t> want_diff;
      for (size_t i = 0; i < n; ++i) {
        if (bins[i] != other[i]) want_diff.push_back(base + i);
      }
      ASSERT_EQ(diff, want_diff) << "bits=" << bits << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------
// Engine-level properties: packed Scan/Fetch byte-identical to the
// decode oracle across quantization schemes and bit widths.
// ---------------------------------------------------------------------

class PackedScanTest : public ::testing::Test {
 protected:
  /// Builds a quantized CIFAR CNN store and returns the engine.
  void OpenQuantized(Mistique* mq, QuantScheme scheme, int kbits) {
    dirs_.push_back(std::make_unique<TempDir>("packed_scan"));
    CifarConfig config;
    config.num_examples = 130;  // not a multiple of the row block: ragged
    const CifarData data = GenerateCifar(config);
    auto input = std::make_shared<Tensor>(data.images);
    MistiqueOptions opts;
    opts.store.directory = dirs_.back()->path() + "/store";
    opts.strategy = StorageStrategy::kDedup;
    opts.row_block_size = 32;
    opts.dnn_scheme = scheme;
    opts.kbits = kbits;
    ASSERT_OK(mq->Open(opts));
    DnnScaleConfig scale;
    scale.cnn_scale = 0.2;
    auto net = BuildCifarCnn(scale);
    ASSERT_OK(mq->LogNetwork(net.get(), input, "cifar", "cnn").status());
    ASSERT_OK(mq->Flush());
  }

  std::vector<std::unique_ptr<TempDir>> dirs_;
};

TEST_F(PackedScanTest, ScanMatchesDecodeOracleAcrossSchemes) {
  TestSeed seed(20260809);
  struct Case {
    QuantScheme scheme;
    int kbits;
  };
  // Every packed width class: 1-bit bitmap, sub-byte kPackedW, full byte.
  const std::vector<Case> cases = {{QuantScheme::kKBit, 1},
                                   {QuantScheme::kKBit, 2},
                                   {QuantScheme::kKBit, 5},
                                   {QuantScheme::kKBit, 8},
                                   {QuantScheme::kThreshold, 8}};
  for (const Case& c : cases) {
    SCOPED_TRACE(testing::Message()
                 << "scheme=" << static_cast<int>(c.scheme)
                 << " kbits=" << c.kbits);
    Mistique mq;
    OpenQuantized(&mq, c.scheme, c.kbits);

    // Oracle: the full reconstructed fetch (decode path).
    FetchRequest full;
    full.project = "cifar";
    full.model = "cnn";
    full.intermediate = "layer7";
    ASSERT_OK_AND_ASSIGN(FetchResult all, mq.Fetch(full));
    ASSERT_FALSE(all.columns.empty());

    Rng rng(seed.value() + c.kbits +
            static_cast<uint64_t>(c.scheme) * 100);
    for (int trial = 0; trial < 10; ++trial) {
      // A predicate anchored at observed values hits real bin edges.
      const size_t col = rng.NextBelow(all.columns.size());
      const std::vector<double>& vals = all.columns[col];
      const double a = vals[rng.NextBelow(vals.size())];
      const double b = vals[rng.NextBelow(vals.size())];
      ScanRequest req;
      req.project = "cifar";
      req.model = "cnn";
      req.intermediate = "layer7";
      req.predicate_column = "n" + std::to_string(col);
      req.lo = std::min(a, b);
      req.hi = std::max(a, b);
      ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
      std::vector<uint64_t> want;
      for (size_t i = 0; i < vals.size(); ++i) {
        if (vals[i] >= req.lo && vals[i] <= req.hi) want.push_back(i);
      }
      ASSERT_EQ(scan.row_ids, want) << "trial " << trial;
      ASSERT_FALSE(scan.row_ids.empty());  // anchored: >= 1 match
      // All blocks accounted for: pruning only ever skips work.
      EXPECT_EQ(scan.blocks_scanned + scan.blocks_pruned, (130 + 31) / 32);

      // Row-subset fetch (packed gather) vs the bulk decode oracle.
      FetchRequest sub = full;
      sub.row_ids = scan.row_ids;
      ASSERT_OK_AND_ASSIGN(FetchResult picked, mq.Fetch(sub));
      ASSERT_EQ(picked.columns.size(), all.columns.size());
      for (size_t cc = 0; cc < all.columns.size(); ++cc) {
        ASSERT_EQ(picked.columns[cc].size(), scan.row_ids.size());
        for (size_t r = 0; r < scan.row_ids.size(); ++r) {
          ASSERT_EQ(picked.columns[cc][r], all.columns[cc][scan.row_ids[r]])
              << "col " << cc << " row " << scan.row_ids[r];
        }
      }
    }

    // Zone-map edges: a range beyond every value prunes every block; the
    // full value range prunes none.
    const std::vector<double>& c0 = all.columns[0];
    const double vmax =
        *std::max_element(c0.begin(), c0.end());
    ScanRequest none;
    none.project = "cifar";
    none.model = "cnn";
    none.intermediate = "layer7";
    none.predicate_column = "n0";
    none.lo = vmax + 1.0;
    none.hi = vmax + 2.0;
    ASSERT_OK_AND_ASSIGN(ScanResult pruned, mq.Scan(none));
    EXPECT_TRUE(pruned.row_ids.empty());
    EXPECT_EQ(pruned.blocks_scanned, 0u);
    EXPECT_EQ(pruned.blocks_pruned, (130u + 31) / 32);

    ScanRequest everything = none;
    everything.lo = -1e30;
    everything.hi = 1e30;
    ASSERT_OK_AND_ASSIGN(ScanResult open, mq.Scan(everything));
    EXPECT_EQ(open.row_ids.size(), 130u);
    EXPECT_EQ(open.blocks_pruned, 0u);
  }
}

TEST_F(PackedScanTest, QuantizedImportScansPacked) {
  // ImportModel's opt-in quantization (the soak harness seed path):
  // imported KBIT columns must qualify for packed scanning, and the scan
  // must equal filtering the reconstructed fetch.
  TestSeed seed(20260810);
  Rng rng(seed.value());
  TempDir dir("quant_import");
  MistiqueOptions opts;
  opts.store.directory = dir.path() + "/store";
  opts.strategy = StorageStrategy::kDedup;
  opts.row_block_size = 32;
  Mistique mq;
  ASSERT_OK(mq.Open(opts));

  ImportIntermediate interm;
  interm.name = "pred";
  interm.stage_index = 1;
  interm.num_rows = 100;
  interm.column_names = {"pred"};
  interm.columns.resize(1);
  for (uint64_t r = 0; r < 100; ++r) {
    interm.columns[0].push_back(rng.Gaussian());
  }
  const std::vector<double> raw = interm.columns[0];
  interm.scheme = QuantScheme::kKBit;
  interm.kbits = 3;
  ASSERT_OK(mq.ImportModel("soak", "q1", {interm}).status());
  ASSERT_OK(mq.Flush());

  FetchRequest full;
  full.project = "soak";
  full.model = "q1";
  full.intermediate = "pred";
  ASSERT_OK_AND_ASSIGN(FetchResult fetched, mq.Fetch(full));
  ASSERT_EQ(fetched.columns.size(), 1u);
  const std::vector<double>& vals = fetched.columns[0];
  // Lossy but on at most 2^3 centers.
  std::vector<double> distinct(vals);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_LE(distinct.size(), 8u);
  EXPECT_NE(vals, raw);

  obs::QueryTrace trace(2, "soak.q1.pred");
  ScanRequest req;
  req.project = "soak";
  req.model = "q1";
  req.intermediate = "pred";
  req.predicate_column = "pred";
  req.lo = distinct.front();
  req.hi = distinct[distinct.size() / 2];
  Result<ScanResult> scan = [&] {
    obs::TraceScope scope(&trace);
    return mq.Scan(req);
  }();
  ASSERT_OK(scan.status());
  std::vector<uint64_t> want;
  for (uint64_t r = 0; r < 100; ++r) {
    if (vals[r] >= req.lo && vals[r] <= req.hi) want.push_back(r);
  }
  EXPECT_EQ(scan->row_ids, want);
  EXPECT_GT(trace.StageSeconds("scan_packed"), 0.0);
}

TEST_F(PackedScanTest, TraceShowsScanPackedStage) {
  Mistique mq;
  OpenQuantized(&mq, QuantScheme::kKBit, 4);
  ScanRequest req;
  req.project = "cifar";
  req.model = "cnn";
  req.intermediate = "layer7";
  req.predicate_column = "n0";
  req.lo = -1e30;
  req.hi = 1e30;
  obs::QueryTrace trace(1, "cifar.cnn.layer7");
  {
    obs::TraceScope scope(&trace);
    ASSERT_OK(mq.Scan(req).status());
  }
  // The packed kernels ran; nothing fell back to decode-and-filter.
  EXPECT_GT(trace.StageSeconds("scan_packed"), 0.0);
  EXPECT_EQ(trace.StageSeconds("scan_decode"), 0.0);
}

}  // namespace
}  // namespace mistique
