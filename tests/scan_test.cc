#include <cmath>

#include "core/mistique.h"
#include "gtest/gtest.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "test_util.h"

namespace mistique {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("scan");
    ZillowConfig config;
    config.num_properties = 600;
    config.num_train = 450;
    config.num_test = 150;
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir_->path()));
  }

  MistiqueOptions Options(StorageStrategy strategy) {
    MistiqueOptions opts;
    opts.store.directory = dir_->path() + "/store" + std::to_string(n_++);
    opts.strategy = strategy;
    opts.row_block_size = 64;
    return opts;
  }

  ScanRequest BaseScan() {
    ScanRequest req;
    req.project = "zillow";
    req.model = "P1_v0";
    req.intermediate = "train_merged";
    req.predicate_column = "yearbuilt";
    return req;
  }

  std::unique_ptr<TempDir> dir_;
  int n_ = 0;
};

TEST_F(ScanTest, MatchesBruteForceFilter) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  ASSERT_OK(mq.Flush());

  ScanRequest req = BaseScan();
  req.lo = 1950;
  req.hi = 1970;
  req.columns = {"taxamount"};
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));

  // Brute force over the full fetch.
  FetchRequest full;
  full.project = "zillow";
  full.model = "P1_v0";
  full.intermediate = "train_merged";
  full.columns = {"yearbuilt", "taxamount"};
  ASSERT_OK_AND_ASSIGN(FetchResult all, mq.Fetch(full));
  std::vector<uint64_t> expect_rows;
  std::vector<double> expect_tax;
  for (size_t i = 0; i < all.columns[0].size(); ++i) {
    const double v = all.columns[0][i];
    if (!std::isnan(v) && v >= 1950 && v <= 1970) {
      expect_rows.push_back(i);
      expect_tax.push_back(all.columns[1][i]);
    }
  }
  EXPECT_EQ(scan.row_ids, expect_rows);
  ASSERT_EQ(scan.columns.size(), 1u);
  EXPECT_EQ(scan.columns[0], expect_tax);
  EXPECT_FALSE(scan.row_ids.empty());
}

TEST_F(ScanTest, ZoneMapsPruneBlocks) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  // parcelid is monotonically distributed across the properties frame, so
  // a narrow parcelid range prunes most blocks.
  ScanRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "properties";
  req.predicate_column = "parcelid";
  req.lo = 10000010;
  req.hi = 10000030;
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_EQ(scan.row_ids.size(), 21u);
  EXPECT_GT(scan.blocks_pruned, 0u);
  EXPECT_LT(scan.blocks_scanned, scan.blocks_pruned);
  EXPECT_EQ(scan.blocks_scanned + scan.blocks_pruned,
            (600 + 63) / 64);  // All blocks accounted for.
}

TEST_F(ScanTest, EmptyRangeAndValidation) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options(StorageStrategy::kDedup)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  ScanRequest req = BaseScan();
  req.lo = 5000;  // No home built in year 5000.
  req.hi = 6000;
  req.columns = {"taxamount"};
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_TRUE(scan.row_ids.empty());
  EXPECT_EQ(scan.columns.size(), 1u);
  EXPECT_TRUE(scan.columns[0].empty());

  req.lo = 10;
  req.hi = 5;
  EXPECT_EQ(mq.Scan(req).status().code(), StatusCode::kInvalidArgument);

  req = BaseScan();
  req.predicate_column = "ghost";
  EXPECT_EQ(mq.Scan(req).status().code(), StatusCode::kNotFound);
}

TEST_F(ScanTest, UnmaterializedFallsBackToRerun) {
  Mistique mq;
  MistiqueOptions opts = Options(StorageStrategy::kAdaptive);
  opts.gamma_min = 1e18;
  ASSERT_OK(mq.Open(opts));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());

  ScanRequest req = BaseScan();
  req.lo = 1950;
  req.hi = 1970;
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_FALSE(scan.row_ids.empty());
  EXPECT_EQ(scan.blocks_pruned, 0u);  // No zone maps without storage.
}

TEST_F(ScanTest, NeuronActivationScanOnDnn) {
  // The paper's example: find examples whose neuron activation exceeds a
  // threshold, on a quantized (8BIT_QT) store — the predicate evaluates
  // on reconstructed values.
  CifarConfig config;
  config.num_examples = 128;
  const CifarData data = GenerateCifar(config);
  auto input = std::make_shared<Tensor>(data.images);

  Mistique mq;
  MistiqueOptions opts = Options(StorageStrategy::kDedup);
  opts.dnn_scheme = QuantScheme::kKBit;
  ASSERT_OK(mq.Open(opts));
  DnnScaleConfig scale;
  scale.cnn_scale = 0.2;
  auto net = BuildCifarCnn(scale);
  ASSERT_OK(mq.LogNetwork(net.get(), input, "cifar", "cnn").status());
  ASSERT_OK(mq.Flush());

  // Pick a live neuron from fc1 and scan for its top activations.
  FetchRequest probe;
  probe.project = "cifar";
  probe.model = "cnn";
  probe.intermediate = "layer7";
  ASSERT_OK_AND_ASSIGN(FetchResult fc1, mq.Fetch(probe));
  size_t busiest = 0;
  double best_max = -1;
  for (size_t n = 0; n < fc1.columns.size(); ++n) {
    const double mx = *std::max_element(fc1.columns[n].begin(),
                                        fc1.columns[n].end());
    if (mx > best_max) {
      best_max = mx;
      busiest = n;
    }
  }
  ASSERT_GT(best_max, 0);

  ScanRequest req;
  req.project = "cifar";
  req.model = "cnn";
  req.intermediate = "layer7";
  req.predicate_column = "n" + std::to_string(busiest);
  req.lo = best_max * 0.5;
  ASSERT_OK_AND_ASSIGN(ScanResult scan, mq.Scan(req));
  EXPECT_FALSE(scan.row_ids.empty());
  // Every returned row's (reconstructed) activation satisfies the bound.
  for (uint64_t row : scan.row_ids) {
    EXPECT_GE(fc1.columns[busiest][row], req.lo);
  }
}

}  // namespace
}  // namespace mistique
