#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "quantize/quantizer.h"
#include "test_util.h"

namespace mistique {
namespace {

std::vector<double> GaussianSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Gaussian();
  return out;
}

// ---------------------------------------------------------------- KBIT_QT

TEST(KBitTest, FitRejectsEmptySample) {
  KBitQuantizer q(8);
  EXPECT_FALSE(q.Fit({}).ok());
  EXPECT_FALSE(q.fitted());
}

TEST(KBitTest, QuantizeBeforeFitRejected) {
  KBitQuantizer q(8);
  EXPECT_FALSE(q.Quantize({1.0}).ok());
}

TEST(KBitTest, EightBitUsesByteEncoding) {
  KBitQuantizer q(8);
  ASSERT_OK(q.Fit(GaussianSample(10000, 1)));
  ASSERT_OK_AND_ASSIGN(ColumnChunk c, q.Quantize(GaussianSample(1000, 2)));
  EXPECT_EQ(c.dtype(), DType::kUInt8);
  EXPECT_EQ(c.byte_size(), 1000u);  // 8x smaller than float64.
}

TEST(KBitTest, ReconstructionErrorSmallAtK8) {
  // With 256 quantile bins on a smooth distribution, reconstruction error
  // should be a small fraction of the data's spread.
  KBitQuantizer q(8);
  std::vector<double> sample = GaussianSample(50000, 3);
  ASSERT_OK(q.Fit(sample));
  const std::vector<double> values = GaussianSample(5000, 4);
  ASSERT_OK_AND_ASSIGN(ColumnChunk c, q.Quantize(values));
  ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                       c.DecodeAsDouble(&q.reconstruction()));
  double err = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    err += std::abs(decoded[i] - values[i]);
  }
  err /= static_cast<double>(values.size());
  EXPECT_LT(err, 0.02);  // vs stddev 1.0
}

TEST(KBitTest, MonotoneBinning) {
  KBitQuantizer q(4);
  ASSERT_OK(q.Fit(GaussianSample(10000, 7)));
  // Bins must be monotone in the value.
  uint8_t prev = 0;
  for (double v = -3.0; v <= 3.0; v += 0.05) {
    const uint8_t bin = q.BinOf(v);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
  EXPECT_EQ(q.BinOf(-1e30), 0);
  EXPECT_EQ(q.BinOf(1e30), 15);
}

class KBitWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(KBitWidthTest, PackedSizeMatchesK) {
  const int k = GetParam();
  KBitQuantizer q(k);
  ASSERT_OK(q.Fit(GaussianSample(4000, 11)));
  const size_t n = 1024;
  ASSERT_OK_AND_ASSIGN(ColumnChunk c, q.Quantize(GaussianSample(n, 12)));
  // k<8 uses the word-aligned scannable layout (floor(64/k) fields per u64
  // word); k==8 stays one byte per bin.
  const size_t expected =
      k == 8 ? n : PackedWByteSize(static_cast<size_t>(k), n);
  EXPECT_EQ(c.byte_size(), expected);
  EXPECT_EQ(c.dtype(), k == 8 ? DType::kUInt8 : DType::kPackedW);
  ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                       c.DecodeAsDouble(&q.reconstruction()));
  EXPECT_EQ(decoded.size(), n);
  // Error shrinks as k grows; sanity bound for any k >= 1.
  double err = 0;
  const std::vector<double> values = GaussianSample(n, 12);
  for (size_t i = 0; i < n; ++i) err += std::abs(decoded[i] - values[i]);
  EXPECT_LT(err / static_cast<double>(n), 1.5);
}

INSTANTIATE_TEST_SUITE_P(Widths, KBitWidthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(KBitTest, PersistAndRestore) {
  KBitQuantizer q(8);
  ASSERT_OK(q.Fit(GaussianSample(10000, 13)));
  ASSERT_OK_AND_ASSIGN(
      KBitQuantizer restored,
      KBitQuantizer::FromTables(8, q.edges(), q.reconstruction().centers));
  for (double v = -2; v <= 2; v += 0.1) {
    EXPECT_EQ(q.BinOf(v), restored.BinOf(v));
  }
}

TEST(KBitTest, FromTablesValidatesSizes) {
  EXPECT_FALSE(KBitQuantizer::FromTables(8, {1.0}, {1.0, 2.0}).ok());
}

// ----------------------------------------------------------- THRESHOLD_QT

TEST(ThresholdTest, ThresholdAtPercentile) {
  std::vector<double> sample(1000);
  for (size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<double>(i);  // Uniform 0..999.
  }
  ThresholdQuantizer q(0.005);
  ASSERT_OK(q.Fit(sample));
  EXPECT_NEAR(q.threshold(), 994.0, 1.5);  // 99.5th percentile.
}

TEST(ThresholdTest, BinarizesAboveThreshold) {
  ThresholdQuantizer q = ThresholdQuantizer::FromThreshold(0.005, 10.0);
  ASSERT_OK_AND_ASSIGN(ColumnChunk c, q.Quantize({5.0, 10.0, 10.5, 100.0}));
  EXPECT_EQ(c.dtype(), DType::kBit);
  ASSERT_OK_AND_ASSIGN(std::vector<double> decoded, c.DecodeAsDouble());
  EXPECT_EQ(decoded, (std::vector<double>{0, 0, 1, 1}));
}

TEST(ThresholdTest, StorageIs64xSmallerThanDouble) {
  ThresholdQuantizer q = ThresholdQuantizer::FromThreshold(0.005, 0.0);
  const size_t n = 4096;
  ASSERT_OK_AND_ASSIGN(ColumnChunk c, q.Quantize(GaussianSample(n, 5)));
  EXPECT_EQ(c.byte_size(), n / 8);
}

// -------------------------------------------------------------- POOL_QT

TEST(PoolTest, AveragePooling2x2) {
  // 4x4 map with known block means.
  const std::vector<double> map = {1, 1, 2, 2,   //
                                   1, 1, 2, 2,   //
                                   3, 3, 4, 4,   //
                                   3, 3, 4, 4};
  PoolQuantizer pool(2, PoolMode::kAvg);
  const std::vector<double> out = pool.PoolMap(map, 4, 4);
  EXPECT_EQ(out, (std::vector<double>{1, 2, 3, 4}));
}

TEST(PoolTest, MaxPooling2x2) {
  const std::vector<double> map = {1, 5, 2, 0,  //
                                   0, 1, 0, 9,  //
                                   7, 0, 1, 1,  //
                                   0, 0, 1, 3};
  PoolQuantizer pool(2, PoolMode::kMax);
  EXPECT_EQ(pool.PoolMap(map, 4, 4), (std::vector<double>{5, 9, 7, 3}));
}

TEST(PoolTest, FullPoolCollapsesToOneValue) {
  PoolQuantizer pool(32, PoolMode::kAvg);
  std::vector<double> map(32 * 32, 0.0);
  for (size_t i = 0; i < map.size(); ++i) map[i] = static_cast<double>(i % 7);
  const std::vector<double> out = pool.PoolMap(map, 32, 32);
  ASSERT_EQ(out.size(), 1u);
  double expect = 0;
  for (double v : map) expect += v;
  EXPECT_NEAR(out[0], expect / 1024.0, 1e-12);
}

TEST(PoolTest, PartialEdgeWindows) {
  // 3x3 pooled by 2: edges use partial windows.
  const std::vector<double> map = {1, 2, 3,  //
                                   4, 5, 6,  //
                                   7, 8, 9};
  PoolQuantizer pool(2, PoolMode::kAvg);
  const std::vector<double> out = pool.PoolMap(map, 3, 3);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[0], (1 + 2 + 4 + 5) / 4.0, 1e-12);
  EXPECT_NEAR(out[1], (3 + 6) / 2.0, 1e-12);
  EXPECT_NEAR(out[2], (7 + 8) / 2.0, 1e-12);
  EXPECT_NEAR(out[3], 9.0, 1e-12);
}

TEST(PoolTest, ChwPoolsEachChannel) {
  PoolQuantizer pool(2, PoolMode::kAvg);
  std::vector<double> chw(2 * 2 * 2);
  // Channel 0 all 1s, channel 1 all 3s.
  for (int i = 0; i < 4; ++i) chw[static_cast<size_t>(i)] = 1;
  for (int i = 4; i < 8; ++i) chw[static_cast<size_t>(i)] = 3;
  const std::vector<double> out = pool.PoolChw(chw, 2, 2, 2);
  EXPECT_EQ(out, (std::vector<double>{1, 3}));
}

class PoolReductionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PoolReductionTest, SizeShrinksBySigmaSquared) {
  const auto [side, sigma] = GetParam();
  PoolQuantizer pool(sigma, PoolMode::kAvg);
  std::vector<double> map(static_cast<size_t>(side) * side, 1.0);
  const auto out = pool.PoolMap(map, side, side);
  const int oside = (side + sigma - 1) / sigma;
  EXPECT_EQ(out.size(), static_cast<size_t>(oside) * oside);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PoolReductionTest,
    ::testing::Combine(::testing::Values(8, 16, 32),
                       ::testing::Values(2, 4, 8, 32)));

// ---------------------------------------------------------------- LP_QT

TEST(LpTest, SchemesShrinkStorage) {
  const std::vector<double> values = GaussianSample(1000, 9);
  ASSERT_OK_AND_ASSIGN(ColumnChunk full, LpQuantize(values, QuantScheme::kNone));
  ASSERT_OK_AND_ASSIGN(ColumnChunk lp32, LpQuantize(values, QuantScheme::kLp32));
  ASSERT_OK_AND_ASSIGN(ColumnChunk lp16, LpQuantize(values, QuantScheme::kLp16));
  EXPECT_EQ(full.byte_size(), 8000u);
  EXPECT_EQ(lp32.byte_size(), 4000u);
  EXPECT_EQ(lp16.byte_size(), 2000u);
}

TEST(LpTest, RejectsNonLpSchemes) {
  EXPECT_FALSE(LpQuantize({1.0}, QuantScheme::kKBit).ok());
  EXPECT_FALSE(LpQuantize({1.0}, QuantScheme::kThreshold).ok());
}

TEST(QuantSchemeTest, Names) {
  EXPECT_EQ(QuantSchemeName(QuantScheme::kNone), "FULL");
  EXPECT_EQ(QuantSchemeName(QuantScheme::kLp16), "LP_QT(16)");
  EXPECT_EQ(QuantSchemeName(QuantScheme::kKBit, 8), "8BIT_QT");
  EXPECT_EQ(QuantSchemeName(QuantScheme::kKBit, 3), "3BIT_QT");
  EXPECT_EQ(QuantSchemeName(QuantScheme::kThreshold), "THRESHOLD_QT");
}

}  // namespace
}  // namespace mistique
