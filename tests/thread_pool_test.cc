#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace mistique {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(1000, [&](size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ZeroAndOneIterations) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { calls++; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls++;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadDegradesToSerial) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t i) { order.push_back(i); });
  // Serial path preserves order (no synchronization needed).
  std::vector<size_t> expect(10);
  std::iota(expect.begin(), expect.end(), size_t{0});
  EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, ResultsAggregateCorrectly) {
  ThreadPool pool;
  const size_t n = 10000;
  std::vector<uint64_t> squares(n);
  pool.ParallelFor(n, [&](size_t i) { squares[i] = i * i; });
  uint64_t sum = std::accumulate(squares.begin(), squares.end(), uint64_t{0});
  // Sum of squares 0..n-1 = (n-1)n(2n-1)/6.
  EXPECT_EQ(sum, (n - 1) * n * (2 * n - 1) / 6);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(20, [&](size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, NestedDataStructuresSafe) {
  // Each iteration writes a disjoint slot — the usage pattern of the
  // column-encode stage.
  ThreadPool pool(4);
  std::vector<std::vector<double>> out(200);
  pool.ParallelFor(200, [&](size_t i) {
    out[i].assign(100, static_cast<double>(i));
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].size(), 100u);
    EXPECT_EQ(out[i][99], static_cast<double>(i));
  }
}

}  // namespace
}  // namespace mistique
