// Failure-injection and exhaustive property tests: what happens when disk
// bytes rot, catalogs truncate, or inputs hit representational edges.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/float16.h"
#include "common/random.h"
#include "compress/lzss.h"
#include "core/mistique.h"
#include "gtest/gtest.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "test_util.h"

namespace mistique {
namespace {

// --------------------------------------------- Exhaustive float16 sweep

TEST(Float16ExhaustiveTest, EveryHalfRoundTripsExactly) {
  // binary16 -> float -> binary16 must be the identity for every one of
  // the 65536 bit patterns (NaNs map to some NaN).
  for (uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const auto h = static_cast<uint16_t>(bits);
    const float f = HalfToFloat(h);
    const uint16_t back = FloatToHalf(f);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(HalfToFloat(back))) << bits;
    } else {
      EXPECT_EQ(back, h) << "bit pattern " << bits;
    }
  }
}

// ---------------------------------------------------- LZSS fuzz sweep

class LzssFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzssFuzzTest, RandomStructuredBuffersRoundTrip) {
  TestSeed seed(GetParam());
  Rng rng(seed);
  LzssCodec codec;
  for (int round = 0; round < 20; ++round) {
    // Mix of runs, repeats of earlier content, and noise — adversarial for
    // match-finding edge cases.
    std::vector<uint8_t> input;
    const int segments = 1 + static_cast<int>(rng.NextBelow(12));
    for (int s = 0; s < segments; ++s) {
      switch (rng.NextBelow(3)) {
        case 0: {  // Run.
          input.insert(input.end(), rng.NextBelow(3000),
                       static_cast<uint8_t>(rng.NextBelow(256)));
          break;
        }
        case 1: {  // Replay of an earlier slice.
          if (!input.empty()) {
            const size_t start = rng.NextBelow(input.size());
            const size_t len =
                std::min<size_t>(rng.NextBelow(4000), input.size() - start);
            std::vector<uint8_t> slice(input.begin() + static_cast<ptrdiff_t>(start),
                                       input.begin() + static_cast<ptrdiff_t>(start + len));
            input.insert(input.end(), slice.begin(), slice.end());
          }
          break;
        }
        default: {  // Noise.
          const size_t len = rng.NextBelow(2000);
          for (size_t i = 0; i < len; ++i) {
            input.push_back(static_cast<uint8_t>(rng.NextBelow(256)));
          }
        }
      }
    }
    std::vector<uint8_t> compressed, output;
    ASSERT_OK(codec.Compress(input, &compressed));
    ASSERT_OK(codec.Decompress(compressed, &output));
    ASSERT_EQ(output, input) << "seed=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzssFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------- On-disk corruption injection

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("corrupt");
    ZillowConfig config;
    config.num_properties = 300;
    config.num_train = 220;
    config.num_test = 80;
    ASSERT_OK(WriteZillowCsvs(GenerateZillow(config), dir_->path()));
  }

  MistiqueOptions Options() {
    MistiqueOptions opts;
    opts.store.directory = dir_->path() + "/store";
    opts.row_block_size = 64;
    // Tiny pool: reads must hit the (corrupted) disk files.
    opts.store.memory_budget_bytes = 1;
    return opts;
  }

  // Flips bytes in the middle of every partition file.
  void CorruptPartitions() {
    namespace fs = std::filesystem;
    for (const auto& entry :
         fs::directory_iterator(dir_->path() + "/store")) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("part-", 0) != 0) continue;
      std::fstream file(entry.path(),
                        std::ios::binary | std::ios::in | std::ios::out);
      const auto size = static_cast<std::streamoff>(entry.file_size());
      if (size < 64) continue;
      file.seekp(size / 2);
      const char junk[8] = {'\x5a', '\x5a', '\x5a', '\x5a',
                            '\x5a', '\x5a', '\x5a', '\x5a'};
      file.write(junk, sizeof(junk));
    }
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(CorruptionTest, CorruptPartitionSurfacesErrorNotGarbage) {
  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  ASSERT_OK(mq.Flush());

  CorruptPartitions();

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "x_all";
  req.force_read = true;
  const Status status = mq.Fetch(req).status();
  // Either the framing (magic/directory) or the LZSS stream must notice.
  EXPECT_FALSE(status.ok());
}

TEST_F(CorruptionTest, TruncatedCatalogRejectedOnReopen) {
  {
    Mistique mq;
    ASSERT_OK(mq.Open(Options()));
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                         BuildZillowPipeline(1, 0, dir_->path()));
    ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
    ASSERT_OK(mq.SaveCatalog());
  }
  // Truncate the catalog to half.
  const std::string path = dir_->path() + "/store/catalog.mq";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);

  Mistique mq;
  EXPECT_EQ(mq.Open(Options()).code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, RerunStillWorksWhenStorageRots) {
  // The executor path is independent of the store: even with every
  // partition corrupted, re-running the pipeline must serve the query.
  Mistique mq;
  ASSERT_OK(mq.Open(Options()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Pipeline> pipeline,
                       BuildZillowPipeline(1, 0, dir_->path()));
  ASSERT_OK(mq.LogPipeline(pipeline.get(), "zillow").status());
  ASSERT_OK(mq.Flush());
  CorruptPartitions();

  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  req.force_read = false;
  ASSERT_OK_AND_ASSIGN(FetchResult result, mq.Fetch(req));
  EXPECT_FALSE(result.used_read);
  EXPECT_EQ(result.columns[0].size(), 80u);
}

// ------------------------------------------------ Representational edges

TEST(EdgeValueTest, ChunksCarryInfinitiesAndNaN) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::nan("");
  const std::vector<double> values = {0.0, -0.0, inf, -inf, nan, 1e308,
                                      -1e308, 5e-324};
  ColumnChunk c = ColumnChunk::FromDoubles(values);
  ASSERT_OK_AND_ASSIGN(std::vector<double> decoded, c.DecodeAsDouble());
  EXPECT_EQ(decoded[2], inf);
  EXPECT_EQ(decoded[3], -inf);
  EXPECT_TRUE(std::isnan(decoded[4]));
  EXPECT_EQ(decoded[7], 5e-324);
}

TEST(EdgeValueTest, KBitQuantizerSurvivesConstantSample) {
  KBitQuantizer q(8);
  ASSERT_OK(q.Fit(std::vector<double>(1000, 3.25)));
  ASSERT_OK_AND_ASSIGN(ColumnChunk c, q.Quantize({3.25, 3.25, 0.0, 9.9}));
  ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                       c.DecodeAsDouble(&q.reconstruction()));
  for (double v : decoded) EXPECT_EQ(v, 3.25);  // Only one bin value exists.
}

TEST(EdgeValueTest, EmptyIntermediateColumnsFetchable) {
  // A frame with zero rows must log and fetch without dividing by zero.
  DataFrame frame;
  ASSERT_OK(frame.AddColumn("empty", {}));
  EXPECT_EQ(frame.num_rows(), 0u);
  ColumnChunk c = ColumnChunk::FromDoubles({});
  EXPECT_EQ(c.num_values(), 0u);
  ASSERT_OK_AND_ASSIGN(std::vector<double> decoded, c.DecodeAsDouble());
  EXPECT_TRUE(decoded.empty());
}

}  // namespace
}  // namespace mistique
