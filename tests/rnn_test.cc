#include <cmath>

#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "gtest/gtest.h"
#include "nn/rnn.h"
#include "test_util.h"

namespace mistique {
namespace {

TEST(RnnLayerTest, ShapesAndBounds) {
  RnnLayer rnn("r", 4, 8, 3);
  Tensor x(2, 4, 10, 1);
  Rng rng(1);
  for (float& v : x.data) v = static_cast<float>(rng.Gaussian());
  ASSERT_OK_AND_ASSIGN(Tensor y, rnn.Forward(x));
  EXPECT_EQ(y.n, 2);
  EXPECT_EQ(y.c, 8);
  EXPECT_EQ(y.h, 10);
  for (float v : y.data) {
    EXPECT_GE(v, -1.0f);  // tanh range.
    EXPECT_LE(v, 1.0f);
  }
}

TEST(RnnLayerTest, StateCarriesAcrossTimesteps) {
  // Same input at every step: without recurrence every step's output
  // would be identical; the hidden state must make step 0 differ from
  // step 1 (state starts at zero).
  RnnLayer rnn("r", 2, 4, 5);
  Tensor x(1, 2, 6, 1);
  for (int t = 0; t < 6; ++t) {
    x.at(0, 0, t, 0) = 1.0f;
    x.at(0, 1, t, 0) = -0.5f;
  }
  ASSERT_OK_AND_ASSIGN(Tensor y, rnn.Forward(x));
  bool differs = false;
  for (int u = 0; u < 4; ++u) {
    if (std::abs(y.at(0, u, 0, 0) - y.at(0, u, 1, 0)) > 1e-6) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RnnLayerTest, ShapeMismatchRejected) {
  RnnLayer rnn("r", 4, 8, 3);
  Tensor wrong_features(1, 3, 10, 1);
  EXPECT_FALSE(rnn.Forward(wrong_features).ok());
  Tensor wrong_width(1, 4, 10, 2);
  EXPECT_FALSE(rnn.Forward(wrong_width).ok());
}

TEST(RnnLayerTest, CheckpointRoundTrip) {
  TempDir dir("rnn_ckpt");
  auto net = BuildSequenceRnn();
  const SequenceData data = GenerateSequences(4);
  ASSERT_OK_AND_ASSIGN(Tensor before, net->Forward(data.sequences));
  const std::string path = dir.path() + "/rnn.ckpt";
  ASSERT_OK(net->SaveCheckpoint(path));
  net->PerturbTrainable(9, 0.3);
  ASSERT_OK(net->LoadCheckpoint(path));
  ASSERT_OK_AND_ASSIGN(Tensor after, net->Forward(data.sequences));
  EXPECT_EQ(before.data, after.data);
}

TEST(LastStepTest, TakesFinalTimestep) {
  LastStepLayer last("l");
  Tensor x(1, 2, 3, 1);
  for (int t = 0; t < 3; ++t) {
    x.at(0, 0, t, 0) = static_cast<float>(t);
    x.at(0, 1, t, 0) = static_cast<float>(10 * t);
  }
  ASSERT_OK_AND_ASSIGN(Tensor y, last.Forward(x));
  EXPECT_EQ(y.h, 1);
  EXPECT_EQ(y.at(0, 0, 0, 0), 2.0f);
  EXPECT_EQ(y.at(0, 1, 0, 0), 20.0f);
}

TEST(SequenceDataTest, DeterministicAndClassStructured) {
  const SequenceData a = GenerateSequences(64);
  const SequenceData b = GenerateSequences(64);
  EXPECT_EQ(a.sequences.data, b.sequences.data);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(RnnMistiqueTest, LogsAndQueriesPerTimestepIntermediates) {
  // End-to-end: the paper's future-work model class logs through the same
  // path as CNNs — per-timestep hidden states become columns.
  TempDir dir("rnn_mq");
  const SequenceData data = GenerateSequences(128);
  auto input = std::make_shared<Tensor>(data.sequences);
  auto net = BuildSequenceRnn();

  MistiqueOptions opts;
  opts.store.directory = dir.path() + "/store";
  opts.row_block_size = 64;
  Mistique mq;
  ASSERT_OK(mq.Open(opts));
  ASSERT_OK(mq.LogNetwork(net.get(), input, "seq", "rnn").status());
  ASSERT_OK(mq.Flush());

  ASSERT_OK_AND_ASSIGN(ModelId id, mq.metadata().FindModel("seq", "rnn"));
  ASSERT_OK_AND_ASSIGN(const IntermediateInfo* layer1,
                       std::as_const(mq.metadata())
                           .FindIntermediate(id, "layer1"));
  // rnn1: 32 hidden units x 16 timesteps.
  EXPECT_EQ(layer1->channels, 32);
  EXPECT_EQ(layer1->height, 16);
  EXPECT_EQ(layer1->columns.size(), 32u * 16u);

  // Unit-5's per-timestep trajectory for sequence 3 (a POINTQ).
  ASSERT_OK_AND_ASSIGN(auto range, Mistique::ChannelColumns(*layer1, 5));
  FetchRequest req;
  req.project = "seq";
  req.model = "rnn";
  req.intermediate = "layer1";
  for (size_t c = range.first; c < range.second; ++c) {
    req.columns.push_back(layer1->columns[c].name);
  }
  req.row_ids = {3};
  req.force_read = true;
  ASSERT_OK_AND_ASSIGN(FetchResult traj, mq.Fetch(req));
  EXPECT_EQ(traj.columns.size(), 16u);

  // Read matches re-run.
  req.force_read = false;
  ASSERT_OK_AND_ASSIGN(FetchResult rerun, mq.Fetch(req));
  for (size_t c = 0; c < traj.columns.size(); ++c) {
    EXPECT_NEAR(traj.columns[0][0], rerun.columns[0][0], 1e-6);
  }
}

TEST(ClassSensitivityTest, SeparableClassScoresHigh) {
  // Activations where column 0 encodes class 0 membership linearly.
  Rng rng(2);
  const size_t n = 300;
  std::vector<int> labels(n);
  std::vector<std::vector<double>> acts(5, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.NextBelow(3));
    acts[0][i] = (labels[i] == 0 ? 2.0 : -2.0) + 0.1 * rng.Gaussian();
    for (size_t c = 1; c < 5; ++c) acts[c][i] = rng.Gaussian();
  }
  ASSERT_OK_AND_ASSIGN(std::vector<double> sensitivity,
                       diagnostics::SvccaClassSensitivity(acts, labels, 3));
  ASSERT_EQ(sensitivity.size(), 3u);
  EXPECT_GT(sensitivity[0], 0.9);   // Class 0 is linearly decodable.
  EXPECT_LT(sensitivity[1], 0.95);  // Classes 1/2 only via the shared
  EXPECT_LT(sensitivity[2], 0.95);  // anti-signal, which is weaker.
}

TEST(ClassSensitivityTest, RnnLayersSeparateSequenceClasses) {
  // On the synthetic sequences, deeper layers should decode classes at
  // least as well as chance, and class sensitivity must be finite/valid.
  const SequenceData data = GenerateSequences(160);
  auto net = BuildSequenceRnn();
  ASSERT_OK_AND_ASSIGN(Tensor hidden, net->Forward(data.sequences, 3));
  std::vector<std::vector<double>> columns(
      hidden.PerExample(), std::vector<double>(static_cast<size_t>(hidden.n)));
  for (int i = 0; i < hidden.n; ++i) {
    const float* ex = hidden.Example(i);
    for (size_t c = 0; c < hidden.PerExample(); ++c) {
      columns[c][static_cast<size_t>(i)] = ex[c];
    }
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<double> sensitivity,
      diagnostics::SvccaClassSensitivity(columns, data.labels, 4));
  for (double s : sensitivity) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // The frequency classes are strongly decodable from the last hidden
  // state of a random RNN (reservoir-computing effect).
  double mean = 0;
  for (double s : sensitivity) mean += s / 4;
  EXPECT_GT(mean, 0.5);
}

TEST(ClassSensitivityTest, Validation) {
  EXPECT_FALSE(diagnostics::SvccaClassSensitivity({}, {}, 2).ok());
  EXPECT_FALSE(
      diagnostics::SvccaClassSensitivity({{1.0, 2.0}}, {0}, 2).ok());
}

}  // namespace
}  // namespace mistique
