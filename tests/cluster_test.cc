/// Cluster layer tests (docs/CLUSTER.md): consistent-hash ShardMap
/// properties, the new wire frames, ImportModel/ExportCatalog round
/// trips, rebalance primitives, and the Router end-to-end against a
/// single-store oracle — including the degradation contract: a scan with
/// an unreachable shard yields the typed degraded error, never a silent
/// partial answer.

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "cluster/rebalance.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "common/random.h"
#include "core/mistique.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "test_util.h"

namespace mistique {
namespace {

using cluster::Router;
using cluster::RouterOptions;
using cluster::ShardMap;
using cluster::ShardSpec;

std::vector<ShardSpec> ThreeShards(uint16_t base_port = 0) {
  std::vector<ShardSpec> shards;
  for (uint32_t id = 0; id < 3; ++id) {
    ShardSpec spec;
    spec.shard_id = id;
    spec.port = base_port == 0 ? 0 : static_cast<uint16_t>(base_port + id);
    shards.push_back(spec);
  }
  return shards;
}

// --- ShardMap: determinism, balance, minimal movement ---

TEST(ShardMapTest, OwnershipIgnoresEndpoints) {
  // Ring placement hashes (shard_id, vnode) only, so the offline splitter
  // (dummy endpoints) and the live router (real ports) must agree.
  ShardMap dummy(1, ThreeShards());
  std::vector<ShardSpec> live = ThreeShards(9000);
  for (ShardSpec& spec : live) spec.host = "10.0.0." + std::to_string(spec.shard_id);
  ShardMap routed(7, live);
  for (int i = 0; i < 500; ++i) {
    const std::string key = ShardMap::PartitionKey("proj", "m" + std::to_string(i));
    EXPECT_EQ(dummy.OwnerIndex(key), routed.OwnerIndex(key)) << key;
  }
}

TEST(ShardMapTest, OwnershipIsStableAcrossInstances) {
  ShardMap a(1, ThreeShards());
  ShardMap b(1, ThreeShards());
  for (int i = 0; i < 200; ++i) {
    const std::string key = "p.m" + std::to_string(i);
    EXPECT_EQ(a.OwnerOf(key), b.OwnerOf(key));
  }
}

TEST(ShardMapTest, AssignmentIsRoughlyBalanced) {
  ShardMap map(1, ThreeShards());
  std::vector<int> counts(3, 0);
  const int kKeys = 3000;
  for (int i = 0; i < kKeys; ++i) {
    counts[map.OwnerIndex("proj.model_" + std::to_string(i))]++;
  }
  // With 64 vnodes/shard the split should be nowhere near degenerate;
  // demand each shard holds at least half its fair share.
  for (int c : counts) EXPECT_GE(c, kKeys / 6) << "counts: " << counts[0]
                                               << " " << counts[1] << " "
                                               << counts[2];
}

TEST(ShardMapTest, AddingShardMovesKeysOnlyToIt) {
  // Consistent hashing's point: growing the ring only moves keys onto
  // the new shard; no key shuffles between surviving shards.
  ShardMap three(1, ThreeShards());
  std::vector<ShardSpec> four = ThreeShards();
  ShardSpec extra;
  extra.shard_id = 3;
  four.push_back(extra);
  ShardMap grown(2, four);

  int moved = 0;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "proj.m" + std::to_string(i);
    const uint32_t before = three.OwnerOf(key);
    const uint32_t after = grown.OwnerOf(key);
    if (before != after) {
      EXPECT_EQ(after, 3u) << key << " moved between surviving shards";
      moved++;
    }
  }
  // The new shard should take roughly a quarter of the space; demand it
  // takes something and not the majority.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(ShardMapTest, IndexOfAndWireRoundTrip) {
  std::vector<ShardSpec> shards = ThreeShards(7100);
  shards[1].host = "192.168.1.5";
  ShardMap map(42, shards, 32);
  EXPECT_EQ(map.IndexOf(2), 2u);
  EXPECT_EQ(map.IndexOf(99), map.shards().size());

  const wire::ShardMapInfo info = map.ToWire();
  EXPECT_EQ(info.version, 42u);
  EXPECT_EQ(info.vnodes_per_shard, 32u);
  ASSERT_EQ(info.shards.size(), 3u);
  EXPECT_EQ(info.shards[1].host, "192.168.1.5");
  EXPECT_EQ(info.shards[1].port, 7101);

  ASSERT_OK_AND_ASSIGN(ShardMap back, ShardMap::FromWire(info));
  EXPECT_EQ(back.version(), 42u);
  EXPECT_EQ(back.vnodes_per_shard(), 32u);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "p.m" + std::to_string(i);
    EXPECT_EQ(back.OwnerOf(key), map.OwnerOf(key));
  }
}

TEST(ShardMapTest, FromWireRejectsEmptyAndDuplicateIds) {
  wire::ShardMapInfo empty;
  empty.vnodes_per_shard = 64;
  EXPECT_FALSE(ShardMap::FromWire(empty).ok());

  wire::ShardMapInfo dup;
  dup.vnodes_per_shard = 64;
  wire::ShardEntry e;
  e.shard_id = 5;
  dup.shards.push_back(e);
  dup.shards.push_back(e);
  EXPECT_FALSE(ShardMap::FromWire(dup).ok());
}

// --- Wire frames: shard map, health, catalog, degraded error ---

TEST(WireClusterTest, ShardMapInfoRoundTrip) {
  wire::ShardMapInfo map;
  map.version = 9;
  map.vnodes_per_shard = 64;
  for (uint32_t i = 0; i < 3; ++i) {
    wire::ShardEntry entry;
    entry.shard_id = i;
    entry.host = "host" + std::to_string(i);
    entry.port = static_cast<uint16_t>(7000 + i);
    entry.health = i == 2 ? 2 : 0;
    map.shards.push_back(entry);
  }
  const std::string payload = wire::EncodeShardMap(map);
  wire::ShardMapInfo out;
  ASSERT_OK(wire::DecodeShardMap(payload, &out));
  EXPECT_EQ(out.version, 9u);
  EXPECT_EQ(out.vnodes_per_shard, 64u);
  ASSERT_EQ(out.shards.size(), 3u);
  EXPECT_EQ(out.shards[2].host, "host2");
  EXPECT_EQ(out.shards[2].port, 7002);
  EXPECT_EQ(out.shards[2].health, 2);

  // Truncation at every prefix must error, never crash or misread.
  for (size_t len = 0; len < payload.size(); ++len) {
    wire::ShardMapInfo t;
    EXPECT_FALSE(wire::DecodeShardMap(payload.substr(0, len), &t).ok())
        << "prefix " << len;
  }
}

TEST(WireClusterTest, HealthInfoRoundTrip) {
  wire::HealthInfo health;
  health.state = 1;
  health.queued = 17;
  health.running = 3;
  health.open_sessions = 2;
  const std::string payload = wire::EncodeHealth(health);
  wire::HealthInfo out;
  ASSERT_OK(wire::DecodeHealth(payload, &out));
  EXPECT_EQ(out.state, 1);
  EXPECT_EQ(out.queued, 17u);
  EXPECT_EQ(out.running, 3u);
  EXPECT_EQ(out.open_sessions, 2u);
  for (size_t len = 0; len < payload.size(); ++len) {
    wire::HealthInfo t;
    EXPECT_FALSE(wire::DecodeHealth(payload.substr(0, len), &t).ok());
  }
}

TEST(WireClusterTest, CatalogRoundTrip) {
  wire::CatalogInfo catalog;
  wire::CatalogModel model;
  model.project = "zillow";
  model.model = "P1_v0";
  model.kind = 1;
  wire::CatalogIntermediate interm;
  interm.name = "pred_test";
  interm.stage_index = 4;
  interm.num_rows = 100;
  interm.columns = {"pred", "score"};
  model.intermediates.push_back(interm);
  interm.name = "train_merged";
  interm.stage_index = 2;
  model.intermediates.push_back(interm);
  catalog.models.push_back(model);
  model.model = "P2_v0";
  model.intermediates.clear();
  catalog.models.push_back(model);

  const std::string payload = wire::EncodeCatalog(catalog);
  wire::CatalogInfo out;
  ASSERT_OK(wire::DecodeCatalog(payload, &out));
  ASSERT_EQ(out.models.size(), 2u);
  EXPECT_EQ(out.models[0].project, "zillow");
  EXPECT_EQ(out.models[0].kind, 1);
  ASSERT_EQ(out.models[0].intermediates.size(), 2u);
  EXPECT_EQ(out.models[0].intermediates[0].name, "pred_test");
  EXPECT_EQ(out.models[0].intermediates[0].stage_index, 4);
  EXPECT_EQ(out.models[0].intermediates[0].num_rows, 100u);
  EXPECT_EQ(out.models[0].intermediates[0].columns,
            (std::vector<std::string>{"pred", "score"}));
  EXPECT_TRUE(out.models[1].intermediates.empty());
  for (size_t len = 0; len < payload.size(); ++len) {
    wire::CatalogInfo t;
    EXPECT_FALSE(wire::DecodeCatalog(payload.substr(0, len), &t).ok());
  }
}

TEST(WireClusterTest, DegradedErrorIsTypedAcrossTheWire) {
  const Status degraded = wire::Degraded("shard 1 is unavailable");
  EXPECT_EQ(degraded.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(wire::IsDegraded(degraded));
  EXPECT_FALSE(wire::IsDegraded(Status::Unavailable("whole endpoint gone")));

  EXPECT_EQ(wire::WireErrorFromStatus(degraded),
            static_cast<uint16_t>(wire::WireError::kDegraded));
  const Status decoded = wire::StatusFromWireError(
      static_cast<uint16_t>(wire::WireError::kDegraded),
      "shard 1 is unavailable");
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(wire::IsDegraded(decoded));
}

// --- Reconnect backoff jitter (satellite b) ---

TEST(JitterTest, ZeroJitterKeepsDeterministicSchedule) {
  Rng rng;
  rng.Seed(7);
  EXPECT_DOUBLE_EQ(net::JitteredBackoff(0.5, 0.0, &rng), 0.5);
}

TEST(JitterTest, JitteredDelayStaysWithinBounds) {
  Rng rng;
  rng.Seed(1234);
  for (int i = 0; i < 1000; ++i) {
    const double d = net::JitteredBackoff(0.8, 0.25, &rng);
    // Full jitter downward only: never longer than base, never below
    // base * (1 - jitter).
    EXPECT_LE(d, 0.8);
    EXPECT_GT(d, 0.8 * 0.75 - 1e-12);
  }
  // Oversized jitter clamps to 1: delay in (0, base].
  for (int i = 0; i < 1000; ++i) {
    const double d = net::JitteredBackoff(0.8, 5.0, &rng);
    EXPECT_LE(d, 0.8);
    EXPECT_GT(d, 0.0);
  }
}

// --- ImportModel / ExportCatalog / rebalance primitives ---

std::vector<ImportIntermediate> SyntheticModel(int model_index,
                                               uint64_t rows = 48) {
  ImportIntermediate interm;
  interm.name = "pred";
  interm.stage_index = 1;
  interm.num_rows = rows;
  interm.column_names = {"pred", "score"};
  interm.columns.resize(2);
  for (uint64_t r = 0; r < rows; ++r) {
    interm.columns[0].push_back(model_index * 1000.0 + r * 0.25);
    interm.columns[1].push_back(std::sin(model_index + 0.1 * r));
  }
  return {interm};
}

TEST(ImportModelTest, FetchesBackByteIdentical) {
  TempDir dir("import");
  MistiqueOptions opts;
  opts.store.directory = dir.path() + "/store";
  opts.row_block_size = 16;
  Mistique mq;
  ASSERT_OK(mq.Open(opts));

  const std::vector<ImportIntermediate> data = SyntheticModel(3);
  ASSERT_OK_AND_ASSIGN(ModelId id, mq.ImportModel("proj", "m3", data));
  (void)id;

  FetchRequest req;
  req.project = "proj";
  req.model = "m3";
  req.intermediate = "pred";
  ASSERT_OK_AND_ASSIGN(FetchResult result, mq.Fetch(req));
  EXPECT_EQ(result.column_names, data[0].column_names);
  ASSERT_EQ(result.columns.size(), 2u);
  EXPECT_EQ(result.columns[0], data[0].columns[0]);  // bit-for-bit
  EXPECT_EQ(result.columns[1], data[0].columns[1]);
  EXPECT_TRUE(result.used_read);  // no executor: read path only

  const CatalogSummary catalog = mq.ExportCatalog();
  ASSERT_EQ(catalog.models.size(), 1u);
  EXPECT_EQ(catalog.models[0].project, "proj");
  EXPECT_EQ(catalog.models[0].name, "m3");
  ASSERT_EQ(catalog.models[0].intermediates.size(), 1u);
  EXPECT_EQ(catalog.models[0].intermediates[0].num_rows, 48u);
  EXPECT_EQ(catalog.models[0].intermediates[0].columns,
            (std::vector<std::string>{"pred", "score"}));
}

TEST(ImportModelTest, RejectsShapeMismatch) {
  TempDir dir("import_bad");
  MistiqueOptions opts;
  opts.store.directory = dir.path() + "/store";
  Mistique mq;
  ASSERT_OK(mq.Open(opts));

  std::vector<ImportIntermediate> data = SyntheticModel(0);
  data[0].columns[1].pop_back();  // rows no longer match num_rows
  EXPECT_FALSE(mq.ImportModel("proj", "bad", data).ok());
}

TEST(RebalanceTest, SplitStoreAssignsEveryModelToItsRingOwner) {
  TempDir dir("split");
  MistiqueOptions opts;
  opts.row_block_size = 16;
  opts.store.directory = dir.path() + "/src";
  Mistique src;
  ASSERT_OK(src.Open(opts));
  const int kModels = 9;
  for (int i = 0; i < kModels; ++i) {
    ASSERT_OK(
        src.ImportModel("proj", "m" + std::to_string(i), SyntheticModel(i))
            .status());
  }

  std::vector<std::unique_ptr<Mistique>> shards;
  std::vector<Mistique*> shard_ptrs;
  for (int s = 0; s < 3; ++s) {
    MistiqueOptions shard_opts = opts;
    shard_opts.store.directory = dir.path() + "/shard" + std::to_string(s);
    shards.push_back(std::make_unique<Mistique>());
    ASSERT_OK(shards.back()->Open(shard_opts));
    shard_ptrs.push_back(shards.back().get());
  }

  ShardMap map(1, ThreeShards());
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> assigned,
                       cluster::SplitStore(&src, shard_ptrs, map));
  size_t total = 0;
  for (size_t c : assigned) total += c;
  EXPECT_EQ(total, static_cast<size_t>(kModels));

  // Every model lives on exactly the shard the ring names, byte-identical
  // to the source.
  for (int i = 0; i < kModels; ++i) {
    const std::string model = "m" + std::to_string(i);
    const size_t owner = map.OwnerIndex(ShardMap::PartitionKey("proj", model));
    FetchRequest req;
    req.project = "proj";
    req.model = model;
    req.intermediate = "pred";
    ASSERT_OK_AND_ASSIGN(FetchResult from_shard, shard_ptrs[owner]->Fetch(req));
    ASSERT_OK_AND_ASSIGN(FetchResult from_src, src.Fetch(req));
    EXPECT_EQ(from_shard.columns, from_src.columns);
    for (size_t other = 0; other < shard_ptrs.size(); ++other) {
      if (other == owner) continue;
      EXPECT_EQ(shard_ptrs[other]->Fetch(req).status().code(),
                StatusCode::kNotFound);
    }
  }
}

TEST(RebalanceTest, PullModelStreamsOverTheWire) {
  TempDir dir("pull");
  MistiqueOptions opts;
  opts.row_block_size = 16;
  opts.store.directory = dir.path() + "/src";
  Mistique src;
  ASSERT_OK(src.Open(opts));
  ASSERT_OK(src.ImportModel("proj", "moving", SyntheticModel(7)).status());

  QueryService service(&src);
  net::Server server(&service);
  ASSERT_OK(server.Start());

  MistiqueOptions dst_opts = opts;
  dst_opts.store.directory = dir.path() + "/dst";
  Mistique dst;
  ASSERT_OK(dst.Open(dst_opts));

  net::ClientOptions copts;
  copts.port = server.port();
  net::Client client(copts);
  ASSERT_OK(cluster::PullModel(&client, &dst, "proj", "moving"));
  EXPECT_EQ(cluster::PullModel(&client, &dst, "proj", "absent").code(),
            StatusCode::kNotFound);

  FetchRequest req;
  req.project = "proj";
  req.model = "moving";
  req.intermediate = "pred";
  ASSERT_OK_AND_ASSIGN(FetchResult pulled, dst.Fetch(req));
  ASSERT_OK_AND_ASSIGN(FetchResult original, src.Fetch(req));
  EXPECT_EQ(pulled.columns, original.columns);
  EXPECT_EQ(pulled.column_names, original.column_names);
  server.Stop();
}

// --- Router end-to-end: split store behind 3 shard servers ---

class RouterTest : public ::testing::Test {
 protected:
  static constexpr int kModels = 8;

  void SetUp() override {
    dir_ = std::make_unique<TempDir>("router");
    MistiqueOptions opts;
    opts.row_block_size = 16;
    opts.store.directory = dir_->path() + "/oracle";
    ASSERT_OK(oracle_.Open(opts));
    for (int i = 0; i < kModels; ++i) {
      ASSERT_OK(oracle_
                    .ImportModel("proj", "m" + std::to_string(i),
                                 SyntheticModel(i))
                    .status());
    }

    // Offline split with dummy endpoints; the live map must route the
    // same because placement ignores endpoints.
    std::vector<Mistique*> shard_ptrs;
    for (int s = 0; s < 3; ++s) {
      MistiqueOptions shard_opts = opts;
      shard_opts.store.directory =
          dir_->path() + "/shard" + std::to_string(s);
      shard_stores_.push_back(std::make_unique<Mistique>());
      ASSERT_OK(shard_stores_.back()->Open(shard_opts));
      shard_ptrs.push_back(shard_stores_.back().get());
    }
    ASSERT_OK(
        cluster::SplitStore(&oracle_, shard_ptrs, ShardMap(1, ThreeShards()))
            .status());

    std::vector<ShardSpec> live;
    for (int s = 0; s < 3; ++s) {
      shard_services_.push_back(
          std::make_unique<QueryService>(shard_ptrs[s]));
      shard_servers_.push_back(
          std::make_unique<net::Server>(shard_services_.back().get()));
      ASSERT_OK(shard_servers_.back()->Start());
      ShardSpec spec;
      spec.shard_id = static_cast<uint32_t>(s);
      spec.port = shard_servers_.back()->port();
      live.push_back(spec);
    }

    RouterOptions router_options;
    router_options.health_interval_sec = 0.05;
    router_options.health_timeout_sec = 0.5;
    router_options.shard_client.backoff_initial_sec = 0.005;
    router_options.shard_client.backoff_max_sec = 0.02;
    router_ = std::make_unique<Router>(ShardMap(1, live), router_options);
    ASSERT_OK(router_->Start());
    front_ = std::make_unique<net::Server>(router_.get());
    ASSERT_OK(front_->Start());
  }

  void TearDown() override {
    if (front_) front_->Stop();
    if (router_) router_->Stop();
    for (auto& server : shard_servers_) {
      if (server) server->Stop();
    }
  }

  net::ClientOptions RouterClientOpts() {
    net::ClientOptions options;
    options.port = front_->port();
    options.backoff_initial_sec = 0.005;
    options.backoff_max_sec = 0.02;
    return options;
  }

  FetchRequest FetchReq(const std::string& model) {
    FetchRequest req;
    req.project = "proj";
    req.model = model;
    req.intermediate = "pred";
    return req;
  }

  size_t OwnerOf(const std::string& model) const {
    return router_->map().OwnerIndex(ShardMap::PartitionKey("proj", model));
  }

  /// A model owned by `shard` (and, with want_owned false, one that is
  /// not). With 8 models over 3 shards both always exist.
  std::string ModelOnShard(size_t shard, bool want_owned = true) {
    for (int i = 0; i < kModels; ++i) {
      const std::string model = "m" + std::to_string(i);
      if ((OwnerOf(model) == shard) == want_owned) return model;
    }
    ADD_FAILURE() << "no model with owner" << (want_owned ? "==" : "!=")
                  << shard;
    return "m0";
  }

  bool WaitFor(const std::function<bool()>& pred, double timeout_sec = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_sec);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  std::unique_ptr<TempDir> dir_;
  Mistique oracle_;
  std::vector<std::unique_ptr<Mistique>> shard_stores_;
  std::vector<std::unique_ptr<QueryService>> shard_services_;
  std::vector<std::unique_ptr<net::Server>> shard_servers_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<net::Server> front_;
};

TEST_F(RouterTest, FetchesMatchOracleByteForByte) {
  net::Client client(RouterClientOpts());
  for (int i = 0; i < kModels; ++i) {
    const std::string model = "m" + std::to_string(i);
    ASSERT_OK_AND_ASSIGN(FetchResult remote, client.Fetch(FetchReq(model)));
    ASSERT_OK_AND_ASSIGN(FetchResult ref, oracle_.Fetch(FetchReq(model)));
    EXPECT_EQ(remote.column_names, ref.column_names) << model;
    EXPECT_EQ(remote.columns, ref.columns) << model;  // identical doubles
    EXPECT_EQ(remote.row_ids, ref.row_ids) << model;
  }
  EXPECT_GE(router_->Stats().fetches, static_cast<uint64_t>(kModels));
}

TEST_F(RouterTest, ScatterGatherScanMatchesOracle) {
  net::Client client(RouterClientOpts());
  ScanRequest scan;
  scan.project = "proj";
  scan.model = "m2";
  scan.intermediate = "pred";
  scan.predicate_column = "score";
  scan.lo = 0;
  scan.hi = 1;
  scan.columns = {"pred", "score"};
  ASSERT_OK_AND_ASSIGN(ScanResult ref, oracle_.Scan(scan));
  ASSERT_FALSE(ref.row_ids.empty());

  ASSERT_OK_AND_ASSIGN(ScanResult remote, client.Scan(scan));
  EXPECT_EQ(remote.row_ids, ref.row_ids);
  EXPECT_EQ(remote.columns, ref.columns);
  EXPECT_EQ(remote.column_names, ref.column_names);
}

TEST_F(RouterTest, ScanOnUnknownModelIsNotFoundNotDegraded) {
  net::Client client(RouterClientOpts());
  ScanRequest scan;
  scan.project = "proj";
  scan.model = "nope";
  scan.intermediate = "pred";
  scan.predicate_column = "score";
  const Status st = client.Scan(scan).status();
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
  EXPECT_FALSE(wire::IsDegraded(st));
}

TEST_F(RouterTest, ShardMapRpcAnswersAtTheRouter) {
  net::Client client(RouterClientOpts());
  ASSERT_OK_AND_ASSIGN(wire::ShardMapInfo info, client.FetchShardMap());
  EXPECT_EQ(info.version, 1u);
  ASSERT_EQ(info.shards.size(), 3u);
  for (const wire::ShardEntry& entry : info.shards) {
    EXPECT_EQ(entry.health, 0) << "shard " << entry.shard_id;
  }
}

TEST_F(RouterTest, CatalogUnionsAllShards) {
  net::Client client(RouterClientOpts());
  ASSERT_OK_AND_ASSIGN(wire::CatalogInfo catalog, client.Catalog());
  std::set<std::string> models;
  for (const wire::CatalogModel& model : catalog.models) {
    models.insert(model.model);
  }
  EXPECT_EQ(models.size(), static_cast<size_t>(kModels));
}

// Satellite (c): a scatter-gather scan with one shard unavailable must
// yield the typed degraded error — never a silent partial answer.
TEST_F(RouterTest, ScanDegradesTypedWhenAnyShardIsDown) {
  const uint64_t degraded_before = router_->Stats().degraded;
  shard_servers_[1]->Stop();

  net::Client client(RouterClientOpts());
  ScanRequest scan;
  scan.project = "proj";
  scan.model = "m0";
  scan.intermediate = "pred";
  scan.predicate_column = "score";
  const Status st = client.Scan(scan).status();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_TRUE(wire::IsDegraded(st)) << st.ToString();
  EXPECT_GT(router_->Stats().degraded, degraded_before);
}

TEST_F(RouterTest, DeadShardDegradesOnlyItsPartitions) {
  const size_t victim = 2;
  shard_servers_[victim]->Stop();
  ASSERT_TRUE(WaitFor([&] { return !router_->ShardUp(victim); }));

  net::Client client(RouterClientOpts());
  // A partition owned by the dead shard answers with the typed error...
  const Status dead =
      client.Fetch(FetchReq(ModelOnShard(victim))).status();
  EXPECT_EQ(dead.code(), StatusCode::kUnavailable) << dead.ToString();
  EXPECT_TRUE(wire::IsDegraded(dead)) << dead.ToString();

  // ...while the rest of the key space keeps serving, byte-identical.
  const std::string alive = ModelOnShard(victim, /*want_owned=*/false);
  ASSERT_OK_AND_ASSIGN(FetchResult remote, client.Fetch(FetchReq(alive)));
  ASSERT_OK_AND_ASSIGN(FetchResult ref, oracle_.Fetch(FetchReq(alive)));
  EXPECT_EQ(remote.columns, ref.columns);
}

TEST_F(RouterTest, RestartedShardRejoinsWithoutRouterRestart) {
  const size_t victim = 0;
  const uint16_t port = shard_servers_[victim]->port();
  const uint64_t rejoins_before = router_->Stats().rejoins;
  shard_servers_[victim]->Stop();
  ASSERT_TRUE(WaitFor([&] { return !router_->ShardUp(victim); }));

  // Same store, same port, fresh service + server — as after a process
  // restart (Stop() drained the old QueryService for good; a restarted
  // shard process always builds a new one over the persisted store).
  net::ServerOptions server_options;
  server_options.port = port;
  shard_services_[victim] =
      std::make_unique<QueryService>(shard_stores_[victim].get());
  shard_servers_[victim] = std::make_unique<net::Server>(
      shard_services_[victim].get(), server_options);
  ASSERT_OK(shard_servers_[victim]->Start());
  ASSERT_EQ(shard_servers_[victim]->port(), port);
  {
    net::ClientOptions direct_opts;
    direct_opts.port = port;
    net::Client direct(direct_opts);
    ASSERT_OK(direct.Ping());
  }
  ASSERT_TRUE(WaitFor([&] { return router_->ShardUp(victim); }));
  EXPECT_GT(router_->Stats().rejoins, rejoins_before);

  net::Client client(RouterClientOpts());
  const std::string model = ModelOnShard(victim);
  ASSERT_OK_AND_ASSIGN(FetchResult remote, client.Fetch(FetchReq(model)));
  ASSERT_OK_AND_ASSIGN(FetchResult ref, oracle_.Fetch(FetchReq(model)));
  EXPECT_EQ(remote.columns, ref.columns);
}

TEST_F(RouterTest, HedgedFetchStillMatchesOracle) {
  // Hedging duplicates work against the same shard; the answer must be
  // unchanged whether the primary or the hedge wins.
  RouterOptions hedged_options;
  hedged_options.health_interval_sec = 0.05;
  hedged_options.hedge_delay_sec = 0.0001;  // hedge almost every request
  auto hedged =
      std::make_unique<Router>(router_->map(), hedged_options);
  ASSERT_OK(hedged->Start());
  net::Server front(hedged.get());
  ASSERT_OK(front.Start());

  net::ClientOptions copts;
  copts.port = front.port();
  net::Client client(copts);
  for (int i = 0; i < kModels; ++i) {
    const std::string model = "m" + std::to_string(i);
    ASSERT_OK_AND_ASSIGN(FetchResult remote, client.Fetch(FetchReq(model)));
    ASSERT_OK_AND_ASSIGN(FetchResult ref, oracle_.Fetch(FetchReq(model)));
    EXPECT_EQ(remote.columns, ref.columns) << model;
  }
  front.Stop();
  hedged->Stop();
}

// Tentpole acceptance: a traced scan through the router comes back as
// ONE assembled tree — router root, one child per live shard the
// scatter touched — while the merged rows stay byte-identical to the
// untraced path.
TEST_F(RouterTest, TracedScatterScanAssemblesOneChildPerLiveShard) {
  net::Client client(RouterClientOpts());
  ScanRequest scan;
  scan.project = "proj";
  scan.model = "m2";
  scan.intermediate = "pred";
  scan.predicate_column = "score";
  scan.lo = 0;
  scan.hi = 1;
  scan.columns = {"pred", "score"};
  ASSERT_OK_AND_ASSIGN(ScanResult ref, oracle_.Scan(scan));
  ASSERT_FALSE(ref.row_ids.empty());

  const uint64_t trace_id = obs::NewTraceId();
  client.SetTraceContext({trace_id, 0, true});
  ASSERT_OK_AND_ASSIGN(ScanResult remote, client.Scan(scan));
  std::optional<obs::QueryTrace> trace = client.TakeLastTrace();
  client.ClearTraceContext();

  EXPECT_EQ(remote.row_ids, ref.row_ids);
  EXPECT_EQ(remote.columns, ref.columns);
  EXPECT_EQ(remote.column_names, ref.column_names);

  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->trace_id, trace_id);
  EXPECT_EQ(trace->node, "router");
  EXPECT_EQ(trace->strategy, "scatter-gather");
  EXPECT_TRUE(trace->sampled);
  EXPECT_GT(trace->total_sec, 0.0);
  ASSERT_EQ(trace->children.size(), 3u);  // one child per live shard

  size_t with_rows = 0;
  size_t not_found = 0;
  for (const obs::QueryTrace& child : trace->children) {
    EXPECT_EQ(child.trace_id, trace_id) << child.node;
    EXPECT_TRUE(child.sampled) << child.node;
    EXPECT_FALSE(child.node.empty());
    if (child.strategy == "not-found") {
      ++not_found;
    } else {
      ++with_rows;
      // The owning shard's child carries its own engine scan stages.
      EXPECT_GT(child.StageSeconds("scan_decode") +
                    child.StageSeconds("scan_packed"),
                0.0)
          << child.node;
      EXPECT_GT(child.total_sec, 0.0) << child.node;
    }
  }
  // The model lives on exactly one shard; the other two scatter legs
  // answered not-found and were synthesized into the tree so shard
  // coverage stays visible.
  EXPECT_EQ(with_rows, 1u);
  EXPECT_EQ(not_found, 2u);
}

// Tentpole acceptance: hedged duplicates become visible in the trace —
// the root carries one attempt span per launch, the winner tagged, and
// only the winning attempt's child trace is grafted.
TEST_F(RouterTest, HedgedTracedFetchShowsBothAttemptsInRoot) {
  RouterOptions hedged_options;
  hedged_options.health_interval_sec = 0.05;
  hedged_options.hedge_delay_sec = 0.0001;  // hedge almost every request
  auto hedged = std::make_unique<Router>(router_->map(), hedged_options);
  ASSERT_OK(hedged->Start());
  net::Server front(hedged.get());
  ASSERT_OK(front.Start());

  net::ClientOptions copts;
  copts.port = front.port();
  net::Client client(copts);

  bool saw_hedge_attempt = false;
  for (int i = 0; i < kModels; ++i) {
    const std::string model = "m" + std::to_string(i);
    const uint64_t trace_id = obs::NewTraceId();
    client.SetTraceContext({trace_id, 0, true});
    ASSERT_OK_AND_ASSIGN(FetchResult remote, client.Fetch(FetchReq(model)));
    std::optional<obs::QueryTrace> trace = client.TakeLastTrace();
    client.ClearTraceContext();

    ASSERT_OK_AND_ASSIGN(FetchResult ref, oracle_.Fetch(FetchReq(model)));
    EXPECT_EQ(remote.columns, ref.columns) << model;

    ASSERT_TRUE(trace.has_value()) << model;
    EXPECT_EQ(trace->trace_id, trace_id) << model;
    EXPECT_EQ(trace->strategy, "forward") << model;
    ASSERT_EQ(trace->children.size(), 1u) << model;  // winner's child only
    EXPECT_EQ(trace->children[0].trace_id, trace_id) << model;

    bool primary = false;
    bool hedge = false;
    int won = 0;
    for (const obs::TraceEvent& event : trace->events()) {
      if (event.name.rfind("attempt primary", 0) == 0) primary = true;
      if (event.name.rfind("attempt hedge", 0) == 0) hedge = true;
      if (event.name.find(" (won)") != std::string::npos) ++won;
    }
    EXPECT_TRUE(primary) << model;
    EXPECT_EQ(won, 1) << model;  // exactly the winning attempt is tagged
    saw_hedge_attempt = saw_hedge_attempt || hedge;
  }
  // With a 0.1 ms hedge delay at least one of the eight fetches hedged;
  // both attempts must then be visible in that request's root.
  EXPECT_TRUE(saw_hedge_attempt);
  EXPECT_GT(hedged->Stats().hedges, 0u);

  front.Stop();
  hedged->Stop();
}

}  // namespace
}  // namespace mistique
