// net_throughput — loopback QPS and latency of the TCP serving layer.
//
// Stands up a QueryService + net::Server on an ephemeral loopback port
// over a Zillow trad store, then drives it with N client threads (each
// its own net::Client, i.e. its own connection and server-side session)
// issuing M fetches over the pipeline's intermediates. Reports p50/p99
// request latency and aggregate QPS, plus a raw ping round that measures
// the wire floor (frame encode + CRC + poll loop round-trip, no query).
// Comparing against service_throughput isolates the serving-layer tax:
// the in-process bench shares this exact query path minus the socket.
//
// Knobs: MQ_CLIENTS (default 4), MQ_REQUESTS (200 per client),
// MQ_WORKERS (4). `--json` emits one machine-readable line for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/mistique.h"
#include "net/client.h"
#include "net/server.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"
#include "service/query_service.h"

using namespace mistique;         // NOLINT: bench brevity.
using namespace mistique::bench;  // NOLINT

namespace {

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

struct LoadResult {
  double elapsed_sec = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t errors = 0;
};

/// N threads x M calls of `op` against fresh clients; latencies pooled.
LoadResult RunLoad(const net::ClientOptions& options, size_t clients,
                   size_t requests,
                   const std::function<Status(net::Client*, size_t)>& op) {
  std::mutex merge_mutex;
  std::vector<double> latencies;
  std::atomic<uint64_t> errors{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(options);
      std::vector<double> mine;
      mine.reserve(requests);
      for (size_t q = 0; q < requests; ++q) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!op(&client, c * requests + q).ok()) {
          errors++;
          continue;
        }
        mine.push_back(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  for (auto& t : threads) t.join();

  LoadResult out;
  out.elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.qps = static_cast<double>(clients * requests) / out.elapsed_sec;
  out.p50_ms = Percentile(&latencies, 0.50) * 1e3;
  out.p99_ms = Percentile(&latencies, 0.99) * 1e3;
  out.errors = errors.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const size_t clients = static_cast<size_t>(EnvInt("MQ_CLIENTS", 4));
  const size_t requests = static_cast<size_t>(EnvInt("MQ_REQUESTS", 200));
  const size_t workers = static_cast<size_t>(EnvInt("MQ_WORKERS", 4));

  // A small trad store: enough distinct intermediates that fetches are
  // not one hot key, small enough to build in seconds.
  BenchDir dir("net_throughput");
  ZillowConfig config;
  config.num_properties = 400;
  config.num_train = 300;
  config.num_test = 100;
  CheckOk(WriteZillowCsvs(GenerateZillow(config), dir.path()), "csvs");

  MistiqueOptions options;
  options.store.directory = dir.path() + "/store";
  options.strategy = StorageStrategy::kDedup;
  options.row_block_size = 64;
  Mistique mq;
  CheckOk(mq.Open(options), "open");
  auto pipeline = CheckOk(BuildZillowPipeline(1, 0, dir.path()), "pipeline");
  const ModelId id = CheckOk(mq.LogPipeline(pipeline.get(), "zillow"), "log");
  CheckOk(mq.Flush(), "flush");

  const ModelInfo* model = CheckOk(mq.metadata().GetModel(id), "model");
  std::vector<FetchRequest> fetches;
  for (const IntermediateInfo& interm : model->intermediates) {
    FetchRequest req;
    req.project = model->project;
    req.model = model->name;
    req.intermediate = interm.name;
    req.n_ex = 64;
    fetches.push_back(std::move(req));
  }

  QueryServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.max_queue = 0;  // Throughput, not admission policy.
  QueryService service(&mq, service_options);

  net::Server server(&service);  // Loopback, ephemeral port.
  CheckOk(server.Start(), "server start");

  net::ClientOptions client_options;
  client_options.port = server.port();

  if (!json) {
    std::printf("# net_throughput: %zu clients x %zu requests, %zu workers, "
                "%zu distinct intermediates, 127.0.0.1:%u\n",
                clients, requests, workers, fetches.size(),
                static_cast<unsigned>(server.port()));
  }

  // Warm the buffer pool and the session caches' underlying pages.
  RunLoad(client_options, 2, 50, [&](net::Client* c, size_t i) {
    return c->Fetch(fetches[i % fetches.size()]).status();
  });

  const LoadResult ping =
      RunLoad(client_options, clients, requests,
              [](net::Client* c, size_t) { return c->Ping(); });
  const LoadResult fetch =
      RunLoad(client_options, clients, requests, [&](net::Client* c, size_t i) {
        return c->Fetch(fetches[i % fetches.size()]).status();
      });
  if (ping.errors != 0 || fetch.errors != 0) {
    std::fprintf(stderr, "FATAL: %llu ping / %llu fetch errors\n",
                 static_cast<unsigned long long>(ping.errors),
                 static_cast<unsigned long long>(fetch.errors));
    std::abort();
  }

  const ServiceStats stats = service.Stats();
  server.Stop();

  if (json) {
    std::printf(
        "{\"clients\": %zu, \"requests_per_client\": %zu, \"workers\": %zu, "
        "\"ping_qps\": %.0f, \"ping_p50_ms\": %.3f, \"ping_p99_ms\": %.3f, "
        "\"fetch_qps\": %.0f, \"fetch_p50_ms\": %.3f, \"fetch_p99_ms\": %.3f, "
        "\"cache_hits\": %llu, \"cache_lookups\": %llu}\n",
        clients, requests, workers, ping.qps, ping.p50_ms, ping.p99_ms,
        fetch.qps, fetch.p50_ms, fetch.p99_ms,
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_lookups));
    return 0;
  }

  std::printf("%8s %10s %10s %10s\n", "round", "qps", "p50_ms", "p99_ms");
  std::printf("%8s %10.0f %10.3f %10.3f\n", "ping", ping.qps, ping.p50_ms,
              ping.p99_ms);
  std::printf("%8s %10.0f %10.3f %10.3f\n", "fetch", fetch.qps, fetch.p50_ms,
              fetch.p99_ms);
  std::printf("service: %llu/%llu session-cache hits, p50 %.2fms engine "
              "latency\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_lookups),
              stats.p50_latency_sec * 1e3);
  return 0;
}
