// Randomized soak harness (pstress-style): adversarial multi-client
// stress against a *served* store, with crash injection and end-to-end
// invariant checking. This is the regression net behind every layer at
// once — durable storage, MVCC ingest, the TCP service, and the sharded
// cluster front-end (docs/TESTING.md).
//
//   soak_harness [--seed S] [--clients N] [--duration-sec D]
//                [--mode single|cluster|both] [--crash] [--self-check]
//                [--pressure]
//
// The driver spawns this same binary as server children, drives them
// with N concurrent wire-protocol clients each running a seeded random
// op mix (fetch / traced fetch / scan / compressed-domain scan over
// quantized columns / distributed-trace + flight-recorder retrospection
// / session churn / catalog / stats / health), while
// a supervisor thread SIGKILLs and restarts servers —
// some restarts armed with MISTIQUE_FAULT_POINT so the child _Exit(91)s
// mid-write at a labeled crash point. A churn thread inside the
// single-node server concurrently imports, deletes, and vacuums models
// (the train_serve-style ingest stream).
//
// Invariants, checked continuously and after each phase:
//   - every successful read is byte-identical to the closed-form oracle
//     (values are a pure function of (model index, row), so any process
//     can re-derive the expected bytes without shared state);
//   - packed scans over quantized (KBIT/THRESHOLD) columns return exactly
//     the row set of the decompress oracle (fetch + client-side filter),
//     and reconstructed values stay on <= 2^k centers;
//   - reads fail only in tolerated ways (unavailable / degraded /
//     deadline / overload; not-found only for churned models) — a
//     cluster scan is typed-degraded, never silently partial;
//   - metrics stay consistent: cache hits <= lookups, zero corruptions,
//     mvcc epoch never regresses within one server incarnation;
//   - a clean drain loses no admitted response:
//     submitted + cache_hits == completed + expired + failed + abandoned
//     and inflight == 0;
//   - the post-hoc oracle reopen succeeds with no orphan temp files, all
//     surviving models byte-identical, and a clean Vacuum.
//
// Every violation prints a one-line reproduction command. --self-check
// flips one payload byte in a sealed partition and asserts the harness
// CATCHES it (exit 0 iff the injected fault was detected and reported).
//
// Child modes (internal):
//   soak_harness --serve-child <store_dir> <port> <workers> <churn_seed>
//                [pressure]
//   soak_harness --router-child <port> <host:port>...

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/rebalance.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "common/random.h"
#include "core/mistique.h"
#include "durability/durable_file.h"
#include "durability/fault_injection.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "service/query_service.h"

namespace mistique {
namespace {

namespace fs = std::filesystem;
using bench::CheckOk;

// ---------------------------------------------------------------------
// The closed-form oracle: model values are a pure function of
// (formula index, row), so clients, servers, and the post-hoc verifier
// all agree on the expected bytes with no shared state. TRAD imports
// store full precision, so comparisons are exact (==), never epsilon.
// ---------------------------------------------------------------------

constexpr int kStaticModels = 6;
constexpr uint64_t kRows = 96;
constexpr int kChurnBase = 500;  ///< churn.mJ uses formula index 500+J

double Col0(int index, uint64_t row) { return index * 1000.0 + row * 0.25; }
double Col1(int index, uint64_t row) { return std::sin(index + 0.1 * row); }

std::vector<ImportIntermediate> SyntheticModel(int index) {
  ImportIntermediate interm;
  interm.name = "pred";
  interm.stage_index = 1;
  interm.num_rows = kRows;
  interm.column_names = {"pred", "score"};
  interm.columns.resize(2);
  for (uint64_t r = 0; r < kRows; ++r) {
    interm.columns[0].push_back(Col0(index, r));
    interm.columns[1].push_back(Col1(index, r));
  }
  return {std::move(interm)};
}

/// Formula index for a catalog model, or -1 if it is not one of ours.
int FormulaIndexFor(const std::string& project, const std::string& model) {
  if (model.size() < 2 || model[0] != 'm') return -1;
  const int j = std::atoi(model.c_str() + 1);
  if (project == "soak") return j;
  if (project == "churn") return kChurnBase + j;
  return -1;
}

// Quantized static models soak.q0..qN-1: seeded through ImportModel's
// opt-in quantization so their columns take the compressed-domain scan
// path (docs/SCAN.md). Their values are lossy, so the scan oracle is the
// decompress path itself: a scan's row set must equal a client-side
// filter of the *fetched* (reconstructed) column — never the raw QCol.
struct QuantSpec {
  QuantScheme scheme;
  int kbits;
};
constexpr int kQuantModels = 3;
// 8-bit (SIMD kernel), 3-bit (sub-byte SWAR kernel), 1-bit bitmap.
constexpr QuantSpec kQuantSpecs[kQuantModels] = {
    {QuantScheme::kKBit, 8},
    {QuantScheme::kKBit, 3},
    {QuantScheme::kThreshold, 8},
};

double QCol(int qindex, uint64_t row) {
  return std::sin(0.31 * static_cast<double>(row) + qindex) *
         (1.0 + qindex);
}

std::vector<ImportIntermediate> QuantModel(int qindex) {
  ImportIntermediate interm;
  interm.name = "pred";
  interm.stage_index = 1;
  interm.num_rows = kRows;
  interm.column_names = {"pred"};
  interm.columns.resize(1);
  for (uint64_t r = 0; r < kRows; ++r) {
    interm.columns[0].push_back(QCol(qindex, r));
  }
  interm.scheme = kQuantSpecs[qindex].scheme;
  interm.kbits = kQuantSpecs[qindex].kbits;
  return {std::move(interm)};
}

/// Index for a soak.qJ model, or -1.
int QuantIndexFor(const std::string& project, const std::string& model) {
  if (project != "soak" || model.size() < 2 || model[0] != 'q') return -1;
  const int j = std::atoi(model.c_str() + 1);
  return j >= 0 && j < kQuantModels ? j : -1;
}

MistiqueOptions StoreOptions(const std::string& dir, bool pressure = false) {
  MistiqueOptions opts;
  opts.store.directory = dir;
  opts.store.partition_target_bytes = 8 * 1024;  // many partitions
  // The --pressure preset shrinks the buffer pool to a few partitions'
  // worth, so every client read contends on pin/evict instead of being
  // absorbed by a warm pool.
  if (pressure) opts.store.memory_budget_bytes = 64 * 1024;
  opts.strategy = StorageStrategy::kDedup;
  opts.row_block_size = 32;
  return opts;
}

// ---------------------------------------------------------------------
// Violations. Recorded centrally; the driver prints the reproduction
// command with every one at exit.
// ---------------------------------------------------------------------

std::mutex g_violation_mutex;
std::vector<std::string> g_violations;

void Violate(const std::string& message) {
  std::lock_guard<std::mutex> lock(g_violation_mutex);
  g_violations.push_back(message);
  std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", message.c_str());
}

size_t ViolationCount() {
  std::lock_guard<std::mutex> lock(g_violation_mutex);
  return g_violations.size();
}

// ---------------------------------------------------------------------
// Server child: open the store, serve it, optionally churn (import /
// delete / vacuum) on the side. SIGTERM drains and prints an accounting
// line the driver audits for lost responses.
// ---------------------------------------------------------------------

std::atomic<bool> g_shutdown{false};
void HandleSignal(int /*sig*/) { g_shutdown.store(true); }

void ChurnLoop(Mistique* mq, uint64_t seed) {
  Rng rng(seed);
  // Resume where a previous incarnation left off: churn indices already
  // in the recovered catalog stay live; new imports continue past them.
  std::vector<int> live;
  int next = 0;
  for (ModelId id : mq->metadata().ListModels()) {
    Result<ModelInfo*> model = mq->metadata().GetModel(id);
    if (!model.ok() || (*model)->project != "churn") continue;
    const int j = std::atoi((*model)->name.c_str() + 1);
    live.push_back(j);
    if (j + 1 > next) next = j + 1;
  }
  while (!g_shutdown.load(std::memory_order_acquire)) {
    const uint64_t dice = rng.NextBelow(10);
    if (dice < 6 || live.size() < 3) {
      const std::string name = "m" + std::to_string(next);
      CheckOk(mq->ImportModel("churn", name,
                              SyntheticModel(kChurnBase + next))
                  .status(),
              "churn import");
      CheckOk(mq->SaveCatalog(), "churn save");
      live.push_back(next);
      next++;
    } else if (dice < 9 && live.size() > 4) {
      const int victim = live.front();
      live.erase(live.begin());
      CheckOk(mq->DeleteModel("churn", "m" + std::to_string(victim)),
              "churn delete");
      CheckOk(mq->Vacuum().status(), "churn vacuum");
      CheckOk(mq->SaveCatalog(), "churn save after vacuum");
    } else {
      CheckOk(mq->Flush(), "churn flush");
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(20 + rng.NextBelow(60)));
  }
}

int RunServeChild(const std::string& store_dir, uint16_t port, size_t workers,
                  uint64_t churn_seed, bool pressure) {
  Mistique mq;
  const Status open_status = mq.Open(StoreOptions(store_dir, pressure));
  if (!open_status.ok()) {
    std::fprintf(stderr, "error: %s\n", open_status.ToString().c_str());
    return 1;
  }
  for (const std::string& warning : mq.recovery_warnings()) {
    std::printf("recovery: %s\n", warning.c_str());
  }

  // Aggressive retrospection policy: the soak clients dump/cross-check
  // the recorder continuously, so it should actually hold traces.
  obs::GlobalFlightRecorder().SetPolicy(/*sample_rate=*/0.25,
                                        /*slow_threshold_sec=*/0.05);
  QueryServiceOptions service_options;
  service_options.num_workers = workers;
  QueryService service(&mq, service_options);

  net::ServerOptions server_options;
  server_options.port = port;
  net::Server server(&service, server_options);
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    std::fprintf(stderr, "error: %s\n", start_status.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("soak-serving %s on 127.0.0.1:%u (churn_seed=%llu)\n",
              store_dir.c_str(), static_cast<unsigned>(server.port()),
              static_cast<unsigned long long>(churn_seed));
  std::fflush(stdout);

  std::thread churn;
  if (churn_seed != 0) churn = std::thread(ChurnLoop, &mq, churn_seed);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (churn.joinable()) churn.join();  // stop the writer before draining
  server.Stop();

  const ServiceStats stats = service.Stats();
  const uint64_t inflight = service.inflight();
  const uint64_t delivered =
      stats.completed + stats.expired + stats.failed + stats.abandoned;
  std::printf(
      "soak-drained: submitted=%llu cache_hits=%llu completed=%llu "
      "expired=%llu failed=%llu abandoned=%llu rejected=%llu inflight=%llu "
      "epoch=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.expired),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.abandoned),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(inflight),
      static_cast<unsigned long long>(mq.CurrentEpoch()));
  std::fflush(stdout);
  // No admitted response may be lost across a clean drain: cache hits
  // count as completed without being submitted, everything else admitted
  // must have been delivered as exactly one of the four outcomes.
  if (stats.submitted + stats.cache_hits != delivered || inflight != 0) {
    std::fprintf(stderr, "drain accounting violated\n");
    return 3;
  }
  return 0;
}

int RunRouterChild(uint16_t port, const std::vector<std::string>& endpoints) {
  std::vector<cluster::ShardSpec> specs;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    const size_t colon = endpoints[i].rfind(':');
    specs.push_back({static_cast<uint32_t>(i), endpoints[i].substr(0, colon),
                     static_cast<uint16_t>(std::strtoul(
                         endpoints[i].c_str() + colon + 1, nullptr, 10))});
  }
  obs::GlobalFlightRecorder().SetPolicy(/*sample_rate=*/0.25,
                                        /*slow_threshold_sec=*/0.05);
  cluster::Router router(cluster::ShardMap(1, specs));
  CheckOk(router.Start(), "router start");

  net::ServerOptions server_options;
  server_options.port = port;
  net::Server server(&router, server_options);
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    std::fprintf(stderr, "error: %s\n", start_status.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("soak-routing %zu shards on 127.0.0.1:%u\n", specs.size(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  router.Stop();
  std::printf("soak-routed\n");
  std::fflush(stdout);
  return 0;
}

// ---------------------------------------------------------------------
// Driver-side process management.
// ---------------------------------------------------------------------

uint16_t PickPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) std::abort();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::abort();
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// Re-execs this binary as a child with output appended to `log_path`.
/// A non-empty `fault_label` arms the injector so the child _Exit(91)s
/// at that crash point's `fault_nth` occurrence.
pid_t SpawnChild(const std::vector<std::string>& args,
                 const std::string& log_path, const std::string& fault_label,
                 int fault_nth) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::abort();
  }
  if (pid == 0) {
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    if (!fault_label.empty()) {
      ::setenv("MISTIQUE_FAULT_POINT", fault_label.c_str(), 1);
      ::setenv("MISTIQUE_FAULT_MODE", "kill", 1);
      ::setenv("MISTIQUE_FAULT_NTH", std::to_string(fault_nth).c_str(), 1);
    } else {
      ::unsetenv("MISTIQUE_FAULT_POINT");
    }
    std::vector<char*> argv;
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    std::_Exit(127);
  }
  return pid;
}

/// Reaps `pid` if it has exited. Returns true and stores the raw wait
/// status when it has.
bool TryReap(pid_t pid, int* status) {
  return ::waitpid(pid, status, WNOHANG) == pid;
}

net::ClientOptions ProbeOptions(uint16_t port) {
  net::ClientOptions options;
  options.port = port;
  options.connect_timeout_sec = 0.5;
  options.request_timeout_sec = 2;
  options.max_reconnect_attempts = 0;
  return options;
}

/// Waits until a server answers Ping on `port` or `pid` dies (returns
/// false; `status` holds the wait status).
bool WaitReady(pid_t pid, uint16_t port, double timeout_sec, int* status) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_sec);
  while (std::chrono::steady_clock::now() < deadline) {
    if (TryReap(pid, status)) return false;
    net::Client probe(ProbeOptions(port));
    if (probe.Ping().ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  *status = -1;
  return false;
}

void KillHard(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

/// SIGTERM + blocking wait; returns the exit code (negative = signaled).
int StopClean(pid_t pid) {
  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return WEXITSTATUS(status);
}

std::string ReadFileTail(const std::string& path, size_t max_bytes = 4096) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return "";
  const auto size = static_cast<size_t>(in.tellg());
  const size_t want = size < max_bytes ? size : max_bytes;
  in.seekg(static_cast<std::streamoff>(size - want));
  std::string out(want, '\0');
  in.read(out.data(), static_cast<std::streamsize>(want));
  return out;
}

/// Value of a `name value` line in a metrics exposition, or -1.
double ParseMetric(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? eol : eol - pos);
    if (line.size() > name.size() + 1 && line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      return std::atof(line.c_str() + name.size() + 1);
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return -1;
}

// ---------------------------------------------------------------------
// Driver configuration and shared client state.
// ---------------------------------------------------------------------

struct Config {
  uint64_t seed = 1;
  int clients = 8;
  double duration_sec = 20;
  std::string mode = "both";  // single | cluster | both
  bool crash = false;
  bool self_check = false;
  /// Tiny buffer-pool preset: serve children run with a 64KB
  /// memory_budget_bytes so every read contends on pin/evict.
  bool pressure = false;
  std::string self_path;  // argv[0], for respawns and repro lines
};

std::string ReproCommand(const Config& cfg) {
  std::string cmd = cfg.self_path + " --seed " + std::to_string(cfg.seed) +
                    " --clients " + std::to_string(cfg.clients) +
                    " --duration-sec " +
                    std::to_string(static_cast<int>(cfg.duration_sec)) +
                    " --mode " + cfg.mode;
  if (cfg.crash) cmd += " --crash";
  if (cfg.self_check) cmd += " --self-check";
  if (cfg.pressure) cmd += " --pressure";
  return cmd;
}

/// Churn-model indices clients discovered via catalog ops; shared so
/// every client can aim fetches at models that actually exist(ed).
struct ChurnView {
  std::mutex mutex;
  std::vector<int> indices;
};

bool ToleratedCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

// ---------------------------------------------------------------------
// The client op mix. Each op verifies its answer against the oracle;
// failures must fall into the tolerated classes above.
// ---------------------------------------------------------------------

void VerifyFetchResult(const FetchResult& result, int formula_index,
                       uint64_t n_ex, const std::string& where) {
  if (result.column_names != std::vector<std::string>{"pred", "score"}) {
    Violate(where + ": unexpected columns");
    return;
  }
  if (result.columns.size() != 2 || result.columns[0].size() != n_ex ||
      result.columns[1].size() != n_ex) {
    Violate(where + ": wrong shape (" +
            std::to_string(result.columns.empty()
                               ? 0
                               : result.columns[0].size()) +
            " rows, expected " + std::to_string(n_ex) + ")");
    return;
  }
  for (uint64_t r = 0; r < n_ex; ++r) {
    if (result.columns[0][r] != Col0(formula_index, r) ||
        result.columns[1][r] != Col1(formula_index, r)) {
      Violate(where + ": row " + std::to_string(r) +
              " diverged from the oracle (got " +
              std::to_string(result.columns[0][r]) + ", want " +
              std::to_string(Col0(formula_index, r)) + ")");
      return;
    }
  }
}

/// A trace handed out by the flight recorder (or a response envelope)
/// must be internally consistent: rings copy/move traces whole under a
/// lock, so a torn or partially-written trace — garbage ids, unnamed
/// events, negative offsets, stage sums exceeding the recorded total —
/// is a synchronization bug, not bad luck. `slack` absorbs timer
/// coarseness, never tearing.
void VerifyTraceIntegrity(const obs::QueryTrace& trace,
                          const std::string& where, int depth = 0) {
  if (trace.trace_id == 0) Violate(where + ": zero trace id");
  if (trace.node.empty()) Violate(where + ": empty node");
  if (!std::isfinite(trace.total_sec) || trace.total_sec < 0 ||
      trace.total_sec > 3600) {
    Violate(where + ": implausible total_sec " +
            std::to_string(trace.total_sec));
  }
  constexpr double kSlack = 0.25;
  double top_level = 0;
  for (const obs::TraceEvent& event : trace.events()) {
    if (event.name.empty()) Violate(where + ": unnamed event");
    if (!std::isfinite(event.start_sec) || event.start_sec < 0 ||
        !std::isfinite(event.duration_sec) || event.duration_sec < 0) {
      Violate(where + ": negative/garbage event timing in " + event.name);
    }
    if (event.depth == 0) top_level += event.duration_sec;
  }
  double stage_sum = 0;
  for (const obs::TraceStageTotal& stage : trace.stage_totals()) {
    if (stage.name.empty()) Violate(where + ": unnamed stage total");
    if (stage.count == 0) Violate(where + ": zero-count stage total");
    if (!std::isfinite(stage.total_sec) || stage.total_sec < 0) {
      Violate(where + ": garbage stage total in " + stage.name);
    }
    stage_sum += stage.total_sec;
  }
  // Stage times are measured inside the request, so neither the
  // top-level span sum nor the per-chunk accumulator sum can exceed the
  // request's own recorded latency.
  if (trace.total_sec > 0) {
    if (top_level > trace.total_sec + kSlack) {
      Violate(where + ": top-level span sum " + std::to_string(top_level) +
              "s exceeds total " + std::to_string(trace.total_sec) + "s");
    }
    if (stage_sum > trace.total_sec + kSlack) {
      Violate(where + ": stage sum " + std::to_string(stage_sum) +
              "s exceeds total " + std::to_string(trace.total_sec) + "s");
    }
  }
  if (depth > 4) {
    Violate(where + ": trace tree deeper than any hop count we run");
    return;
  }
  for (const obs::QueryTrace& child : trace.children) {
    VerifyTraceIntegrity(child, where + " >child", depth + 1);
  }
}

void ClientWorker(const Config& cfg, uint16_t port, int client_index,
                  std::atomic<bool>* stop, ChurnView* churn) {
  net::ClientOptions options;
  options.port = port;
  options.connect_timeout_sec = 1;
  options.request_timeout_sec = 8;
  options.max_reconnect_attempts = 3;
  options.backoff_initial_sec = 0.05;
  options.backoff_max_sec = 0.5;
  options.jitter_seed = cfg.seed * 7919 + static_cast<uint64_t>(client_index) + 1;
  net::Client client(options);

  Rng rng(cfg.seed * 1000003 +
          static_cast<uint64_t>(client_index) * 0x9E3779B9ull);
  uint64_t op_count = 0;
  const auto where = [&](const std::string& op) {
    return "[" + cfg.mode + " client " + std::to_string(client_index) +
           " op " + std::to_string(op_count) + "] " + op;
  };

  while (!stop->load(std::memory_order_acquire)) {
    op_count++;
    const uint64_t dice = rng.NextBelow(100);

    if (dice < 30) {  // plain fetch of a static model
      const int idx = static_cast<int>(rng.NextBelow(kStaticModels));
      const uint64_t n_ex = 1 + rng.NextBelow(kRows);
      FetchRequest req;
      req.project = "soak";
      req.model = "m" + std::to_string(idx);
      req.intermediate = "pred";
      req.n_ex = n_ex;
      if (rng.Bernoulli(0.2)) req.force_read = true;
      Result<FetchResult> r = client.Fetch(req);
      const std::string desc = where("fetch soak.m" + std::to_string(idx) +
                                     " n=" + std::to_string(n_ex));
      if (r.ok()) {
        VerifyFetchResult(*r, idx, n_ex, desc);
      } else if (!ToleratedCode(r.status().code())) {
        Violate(desc + ": " + r.status().ToString());
      }
    } else if (dice < 40) {  // traced fetch
      const int idx = static_cast<int>(rng.NextBelow(kStaticModels));
      const uint64_t n_ex = 1 + rng.NextBelow(kRows);
      FetchRequest req;
      req.project = "soak";
      req.model = "m" + std::to_string(idx);
      req.intermediate = "pred";
      req.n_ex = n_ex;
      wire::TraceResultSummary summary;
      Result<obs::QueryTrace> r = client.TraceFetch(req, &summary);
      const std::string desc = where("trace soak.m" + std::to_string(idx));
      if (r.ok()) {
        if (r->strategy.empty()) Violate(desc + ": empty strategy");
        if (summary.rows != n_ex || summary.cols != 2) {
          Violate(desc + ": summary " + std::to_string(summary.rows) + "x" +
                  std::to_string(summary.cols) + ", expected " +
                  std::to_string(n_ex) + "x2");
        }
      } else if (!ToleratedCode(r.status().code())) {
        Violate(desc + ": " + r.status().ToString());
      }
    } else if (dice < 52) {  // predicate scan with a computable answer
      const int idx = static_cast<int>(rng.NextBelow(kStaticModels));
      const uint64_t a = rng.NextBelow(kRows);
      const uint64_t b = a + rng.NextBelow(kRows - a);
      ScanRequest req;
      req.project = "soak";
      req.model = "m" + std::to_string(idx);
      req.intermediate = "pred";
      req.predicate_column = "pred";
      req.lo = Col0(idx, a) - 0.1;  // strictly between representable values
      req.hi = Col0(idx, b) + 0.1;
      req.columns = {"pred"};
      Result<ScanResult> r = client.Scan(req);
      const std::string desc =
          where("scan soak.m" + std::to_string(idx) + " rows [" +
                std::to_string(a) + "," + std::to_string(b) + "]");
      if (r.ok()) {
        // A successful scan must be exactly the oracle row set — a
        // silently-partial scatter-gather answer shows up right here.
        if (r->row_ids.size() != b - a + 1) {
          Violate(desc + ": got " + std::to_string(r->row_ids.size()) +
                  " rows, expected " + std::to_string(b - a + 1));
        } else {
          for (uint64_t i = 0; i <= b - a; ++i) {
            if (r->row_ids[i] != a + i) {
              Violate(desc + ": row_ids[" + std::to_string(i) + "] = " +
                      std::to_string(r->row_ids[i]) + ", expected " +
                      std::to_string(a + i));
              break;
            }
          }
          if (!r->columns.empty() && !r->columns[0].empty() &&
              r->columns[0][0] != Col0(idx, a)) {
            Violate(desc + ": scan values diverged from the oracle");
          }
        }
      } else if (!ToleratedCode(r.status().code())) {
        Violate(desc + ": " + r.status().ToString());
      }
    } else if (dice < 60) {  // compressed-domain scan vs the decompress oracle
      // Quantized values are lossy, so the oracle is the decompress path:
      // fetch the reconstructed column, filter it client-side, and demand
      // the packed scan return exactly that row set.
      const int q = static_cast<int>(rng.NextBelow(kQuantModels));
      FetchRequest freq;
      freq.project = "soak";
      freq.model = "q" + std::to_string(q);
      freq.intermediate = "pred";
      freq.n_ex = kRows;
      Result<FetchResult> f = client.Fetch(freq);
      const std::string desc = where("qscan soak.q" + std::to_string(q));
      if (!f.ok()) {
        if (!ToleratedCode(f.status().code())) {
          Violate(desc + ": oracle fetch: " + f.status().ToString());
        }
      } else if (f->columns.size() != 1 || f->columns[0].size() != kRows) {
        Violate(desc + ": oracle fetch wrong shape");
      } else {
        const std::vector<double>& vals = f->columns[0];
        // Reconstructed values live on at most 2^k centers.
        std::vector<double> distinct(vals);
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        const size_t max_centers =
            1ull << (kQuantSpecs[q].scheme == QuantScheme::kThreshold
                         ? 1
                         : kQuantSpecs[q].kbits);
        if (distinct.size() > max_centers) {
          Violate(desc + ": " + std::to_string(distinct.size()) +
                  " distinct values from a " +
                  std::to_string(max_centers) + "-center quantizer");
        }
        // A predicate anchored at observed values hits real bin edges.
        const double a = vals[rng.NextBelow(kRows)];
        const double b = vals[rng.NextBelow(kRows)];
        ScanRequest req;
        req.project = "soak";
        req.model = "q" + std::to_string(q);
        req.intermediate = "pred";
        req.predicate_column = "pred";
        req.lo = std::min(a, b);
        req.hi = std::max(a, b);
        Result<ScanResult> r = client.Scan(req);
        if (r.ok()) {
          std::vector<uint64_t> want;
          for (uint64_t i = 0; i < kRows; ++i) {
            if (vals[i] >= req.lo && vals[i] <= req.hi) want.push_back(i);
          }
          if (r->row_ids != want) {
            Violate(desc + ": packed scan returned " +
                    std::to_string(r->row_ids.size()) +
                    " rows, decompress oracle says " +
                    std::to_string(want.size()));
          }
        } else if (!ToleratedCode(r.status().code())) {
          Violate(desc + ": " + r.status().ToString());
        }
      }
    } else if (dice < 70) {  // fetch a churned (import/delete racing) model
      int churn_index = -1;
      {
        std::lock_guard<std::mutex> lock(churn->mutex);
        if (!churn->indices.empty()) {
          churn_index = churn->indices[rng.NextBelow(churn->indices.size())];
        }
      }
      if (churn_index >= 0) {
        FetchRequest req;
        req.project = "churn";
        req.model = "m" + std::to_string(churn_index);
        req.intermediate = "pred";
        req.n_ex = kRows;
        Result<FetchResult> r = client.Fetch(req);
        const std::string desc =
            where("fetch churn.m" + std::to_string(churn_index));
        if (r.ok()) {
          VerifyFetchResult(*r, kChurnBase + churn_index, kRows, desc);
        } else if (r.status().code() != StatusCode::kNotFound &&
                   !ToleratedCode(r.status().code())) {
          // NotFound is legal: the model may have been deleted since the
          // catalog listing. Anything else non-tolerated is not.
          Violate(desc + ": " + r.status().ToString());
        }
      }
    } else if (dice < 80) {  // catalog: completeness + churn discovery
      Result<wire::CatalogInfo> r = client.Catalog();
      const std::string desc = where("catalog");
      if (r.ok()) {
        std::vector<bool> seen(kStaticModels, false);
        std::vector<bool> seen_quant(kQuantModels, false);
        std::vector<int> churn_now;
        for (const wire::CatalogModel& model : r->models) {
          const int idx = FormulaIndexFor(model.project, model.model);
          const int qidx = QuantIndexFor(model.project, model.model);
          if (model.project == "soak" && idx >= 0 && idx < kStaticModels) {
            seen[static_cast<size_t>(idx)] = true;
          } else if (qidx >= 0) {
            seen_quant[static_cast<size_t>(qidx)] = true;
          } else if (model.project == "churn" && idx >= 0) {
            churn_now.push_back(idx - kChurnBase);
          }
        }
        for (int i = 0; i < kStaticModels; ++i) {
          if (!seen[static_cast<size_t>(i)]) {
            Violate(desc + ": static model soak.m" + std::to_string(i) +
                    " missing from a successful catalog listing");
          }
        }
        for (int i = 0; i < kQuantModels; ++i) {
          if (!seen_quant[static_cast<size_t>(i)]) {
            Violate(desc + ": quantized model soak.q" + std::to_string(i) +
                    " missing from a successful catalog listing");
          }
        }
        std::lock_guard<std::mutex> lock(churn->mutex);
        churn->indices = std::move(churn_now);
      } else if (!ToleratedCode(r.status().code())) {
        Violate(desc + ": " + r.status().ToString());
      }
    } else if (dice < 86) {  // stats consistency
      Result<ServiceStats> r = client.Stats();
      if (r.ok() && r->cache_hits > r->cache_lookups) {
        Violate(where("stats") + ": cache_hits " +
                std::to_string(r->cache_hits) + " > cache_lookups " +
                std::to_string(r->cache_lookups));
      } else if (!r.ok() && !ToleratedCode(r.status().code())) {
        Violate(where("stats") + ": " + r.status().ToString());
      }
    } else if (dice < 92) {  // health probe
      Result<wire::HealthInfo> r = client.Health();
      if (r.ok() && r->state != 0) {
        // Nothing is ever drained while client threads run.
        Violate(where("health") + ": unexpected draining state");
      } else if (!r.ok() && !ToleratedCode(r.status().code())) {
        Violate(where("health") + ": " + r.status().ToString());
      }
    } else if (dice < 96) {  // distributed trace + flight recorder
      const uint64_t flavor = rng.NextBelow(4);
      if (flavor < 2) {
        // Enveloped traced fetch: the hop's trace rides back with the
        // response. Its stage times were measured inside the request, so
        // their sum is bounded by the latency this client observed over
        // the wire (plus generous slack for retries and coarse clocks).
        const int idx = static_cast<int>(rng.NextBelow(kStaticModels));
        const uint64_t n_ex = 1 + rng.NextBelow(kRows);
        FetchRequest req;
        req.project = "soak";
        req.model = "m" + std::to_string(idx);
        req.intermediate = "pred";
        req.n_ex = n_ex;
        client.SetTraceContext({obs::NewTraceId(), 0, true});
        const auto start = std::chrono::steady_clock::now();
        Result<FetchResult> r = client.Fetch(req);
        const double wire_sec = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
        std::optional<obs::QueryTrace> trace = client.TakeLastTrace();
        client.ClearTraceContext();
        const std::string desc = where("dtrace soak.m" + std::to_string(idx));
        if (r.ok()) {
          VerifyFetchResult(*r, idx, n_ex, desc);
          if (trace.has_value()) {
            VerifyTraceIntegrity(*trace, desc);
            if (!trace->sampled) Violate(desc + ": unsampled trace echoed");
            double stage_sum = 0;
            for (const obs::TraceStageTotal& stage : trace->stage_totals()) {
              stage_sum += stage.total_sec;
            }
            if (stage_sum > wire_sec + 1.0) {
              Violate(desc + ": trace stage sum " +
                      std::to_string(stage_sum) +
                      "s exceeds wire latency " + std::to_string(wire_sec) +
                      "s");
            }
          } else {
            Violate(desc + ": sampled envelope came back without a trace");
          }
        } else if (!ToleratedCode(r.status().code())) {
          Violate(desc + ": " + r.status().ToString());
        }
      } else {
        // Retrospection under churn: whatever the rings return must be
        // whole — never a torn/partial trace.
        const bool slow = flavor == 3;
        Result<std::vector<obs::QueryTrace>> r =
            slow ? client.SlowLog(8) : client.TraceDump(8);
        const std::string desc = where(slow ? "slowlog" : "trace-dump");
        if (r.ok()) {
          for (size_t i = 0; i < r->size(); ++i) {
            VerifyTraceIntegrity((*r)[i], desc + " #" + std::to_string(i));
          }
          if (slow) {
            for (size_t i = 1; i < r->size(); ++i) {
              if ((*r)[i - 1].total_sec < (*r)[i].total_sec) {
                Violate(desc + ": slow log not sorted slowest-first");
                break;
              }
            }
          }
        } else if (!ToleratedCode(r.status().code())) {
          Violate(desc + ": " + r.status().ToString());
        }
      }
    } else {  // session churn: drop server-side cache state
      const Status st = client.CloseSession();
      if (!st.ok() && !ToleratedCode(st.code())) {
        Violate(where("close-session") + ": " + st.ToString());
      }
    }
  }
  (void)client.CloseSession();
}

// ---------------------------------------------------------------------
// Supervisor: SIGKILL + restart servers mid-traffic, some restarts
// armed to _Exit(91) at a random crash point; scrape metrics between
// incarnations and hold them to the consistency invariants.
// ---------------------------------------------------------------------

struct ServerSlot {
  std::vector<std::string> args;  ///< respawn command
  std::string log;
  uint16_t port = 0;
  pid_t pid = -1;
  uint64_t incarnation = 0;
  double last_epoch = -1;  ///< within the current incarnation
};

void ScrapeAndCheck(ServerSlot* slot, const std::string& who) {
  net::Client probe(ProbeOptions(slot->port));
  Result<std::string> metrics = probe.Metrics();
  if (!metrics.ok()) return;  // mid-crash; tolerated
  const double corruptions =
      ParseMetric(*metrics, "mistique_corruptions_detected");
  if (corruptions > 0) {
    Violate(who + ": mistique_corruptions_detected = " +
            std::to_string(corruptions));
  }
  const double hits = ParseMetric(*metrics, "mistique_service_cache_hits");
  const double lookups =
      ParseMetric(*metrics, "mistique_service_cache_lookups");
  if (hits >= 0 && lookups >= 0 && hits > lookups) {
    Violate(who + ": cache_hits > cache_lookups in metrics");
  }
  const double epoch = ParseMetric(*metrics, "mistique_mvcc_current_epoch");
  const double min_pinned =
      ParseMetric(*metrics, "mistique_mvcc_min_pinned_epoch");
  if (epoch >= 0) {
    if (slot->last_epoch >= 0 && epoch < slot->last_epoch) {
      Violate(who + ": mvcc epoch regressed " +
              std::to_string(slot->last_epoch) + " -> " +
              std::to_string(epoch) + " within one incarnation");
    }
    slot->last_epoch = epoch;
    if (min_pinned > epoch) {
      Violate(who + ": min pinned epoch " + std::to_string(min_pinned) +
              " exceeds current epoch " + std::to_string(epoch));
    }
  }
}

/// (Re)spawns a slot and waits for readiness; armed children that die at
/// their crash point before serving are respawned unarmed.
bool EnsureUp(ServerSlot* slot, const std::string& fault_label, int fault_nth,
              const std::string& who) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::string& label = attempt == 0 ? fault_label : "";
    slot->pid = SpawnChild(slot->args, slot->log, label, fault_nth);
    slot->incarnation++;
    slot->last_epoch = -1;
    int status = 0;
    if (WaitReady(slot->pid, slot->port, 20, &status)) return true;
    if (status == -1) {  // still alive but unreachable
      KillHard(slot->pid);
      continue;
    }
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code != FaultInjector::kKillExitCode) {
      Violate(who + ": server exited " + std::to_string(code) +
              " before becoming ready\n--- log tail ---\n" +
              ReadFileTail(slot->log));
      return false;
    }
    // Died at its armed crash point during startup/replay: legal; the
    // next attempt respawns unarmed.
  }
  Violate(who + ": server never became ready after 3 spawns");
  return false;
}

void SupervisorLoop(const Config& cfg, std::vector<ServerSlot*> victims,
                    bool arm_faults, std::atomic<bool>* stop) {
  Rng rng(cfg.seed ^ 0xC0FFEE);
  const std::vector<std::string>& labels = FaultPointLabels();
  while (!stop->load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(400 + rng.NextBelow(1200)));
    if (stop->load(std::memory_order_acquire)) break;
    ServerSlot* victim = victims[rng.NextBelow(victims.size())];
    const std::string who =
        "[" + cfg.mode + " supervisor " + victim->log + "]";

    // Check in on the incumbent first: an armed child may already have
    // died at its crash point.
    int status = 0;
    if (!TryReap(victim->pid, &status)) {
      if (rng.Bernoulli(0.3)) {  // let it live; just audit its metrics
        ScrapeAndCheck(victim, who);
        continue;
      }
      KillHard(victim->pid);
    } else {
      const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      if (code != FaultInjector::kKillExitCode) {
        Violate(who + ": server died unexpectedly (exit " +
                std::to_string(code) + ")\n--- log tail ---\n" +
                ReadFileTail(victim->log));
        stop->store(true);
        return;
      }
    }
    // Respawn, sometimes armed so the NEXT death is at a labeled crash
    // point inside the churn writer instead of an arbitrary SIGKILL.
    std::string label;
    int nth = 1;
    if (arm_faults && rng.Bernoulli(0.5)) {
      label = labels[rng.NextBelow(labels.size())];
      nth = static_cast<int>(rng.UniformInt(1, 4));
    }
    if (!EnsureUp(victim, label, nth, who)) {
      stop->store(true);
      return;
    }
    ScrapeAndCheck(victim, who);
  }
}

// ---------------------------------------------------------------------
// Store construction + the post-hoc oracle.
// ---------------------------------------------------------------------

void BuildSeedStore(const std::string& dir) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  Mistique mq;
  CheckOk(mq.Open(StoreOptions(dir)), "seed open");
  for (int i = 0; i < kStaticModels; ++i) {
    CheckOk(mq.ImportModel("soak", "m" + std::to_string(i), SyntheticModel(i))
                .status(),
            "seed import");
  }
  for (int q = 0; q < kQuantModels; ++q) {
    CheckOk(mq.ImportModel("soak", "q" + std::to_string(q), QuantModel(q))
                .status(),
            "seed quant import");
  }
  CheckOk(mq.Flush(), "seed flush");
  CheckOk(mq.SaveCatalog(), "seed save");
}

void SplitSeedStore(const std::string& src_dir, const std::string& prefix,
                    size_t shards) {
  Mistique src;
  CheckOk(src.Open(StoreOptions(src_dir)), "split src open");
  std::vector<cluster::ShardSpec> specs;
  std::vector<std::unique_ptr<Mistique>> stores;
  std::vector<Mistique*> dst;
  for (size_t i = 0; i < shards; ++i) {
    specs.push_back({static_cast<uint32_t>(i), "", 0});
    const std::string dir = prefix + std::to_string(i);
    fs::remove_all(dir);
    fs::create_directories(dir);
    stores.push_back(std::make_unique<Mistique>());
    CheckOk(stores.back()->Open(StoreOptions(dir)), "shard open");
    dst.push_back(stores.back().get());
  }
  CheckOk(cluster::SplitStore(&src, dst, cluster::ShardMap(1, specs)).status(),
          "split");
  for (size_t i = 0; i < shards; ++i) {
    CheckOk(dst[i]->Flush(), "shard flush");
    CheckOk(dst[i]->SaveCatalog(), "shard save");
  }
}

/// Post-hoc verification of one store directory: clean reopen, no
/// atomic-write debris, every surviving model byte-identical to the
/// oracle, and a clean vacuum. Returns the static-model indices found.
std::vector<int> VerifyStoreOracle(const std::string& dir,
                                   const std::string& who) {
  std::vector<int> statics_found;
  Mistique mq;
  const Status open_status = mq.Open(StoreOptions(dir));
  if (!open_status.ok()) {
    Violate(who + ": post-hoc reopen failed: " + open_status.ToString());
    return statics_found;
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().ends_with(kTempSuffix)) {
      Violate(who + ": orphan temp file " + entry.path().string());
    }
  }
  for (ModelId id : mq.metadata().ListModels()) {
    Result<ModelInfo*> model = mq.metadata().GetModel(id);
    if (!model.ok()) {
      Violate(who + ": GetModel failed: " + model.status().ToString());
      continue;
    }
    const std::string& project = (*model)->project;
    const std::string& name = (*model)->name;
    const int qidx = QuantIndexFor(project, name);
    if (qidx >= 0) {
      // Quantized model: fetch must succeed with the right shape, values
      // must lie on at most 2^k centers, and an in-process scan must be
      // byte-identical to filtering the decompressed column.
      Result<FetchResult> qr =
          mq.GetIntermediates({project + "." + name + ".pred.*"}, kRows);
      if (!qr.ok()) {
        Violate(who + ": post-hoc quant fetch " + name + ": " +
                qr.status().ToString());
        continue;
      }
      if (qr->columns.size() != 1 || qr->columns[0].size() != kRows) {
        Violate(who + ": post-hoc quant fetch " + name + " wrong shape");
        continue;
      }
      const std::vector<double>& vals = qr->columns[0];
      std::vector<double> distinct(vals);
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      const size_t max_centers =
          1ull << (kQuantSpecs[qidx].scheme == QuantScheme::kThreshold
                       ? 1
                       : kQuantSpecs[qidx].kbits);
      if (distinct.size() > max_centers) {
        Violate(who + ": quant model " + name + " has " +
                std::to_string(distinct.size()) + " distinct values from a " +
                std::to_string(max_centers) + "-center quantizer");
      }
      ScanRequest sreq;
      sreq.project = project;
      sreq.model = name;
      sreq.intermediate = "pred";
      sreq.predicate_column = "pred";
      sreq.lo = distinct.front();
      sreq.hi = distinct[distinct.size() / 2];
      Result<ScanResult> sr = mq.Scan(sreq);
      if (!sr.ok()) {
        Violate(who + ": post-hoc quant scan " + name + ": " +
                sr.status().ToString());
        continue;
      }
      std::vector<uint64_t> want;
      for (uint64_t r = 0; r < kRows; ++r) {
        if (vals[r] >= sreq.lo && vals[r] <= sreq.hi) want.push_back(r);
      }
      if (sr->row_ids != want) {
        Violate(who + ": post-hoc quant scan " + name + " returned " +
                std::to_string(sr->row_ids.size()) +
                " rows, decompress oracle says " + std::to_string(want.size()));
      }
      continue;
    }
    const int idx = FormulaIndexFor(project, name);
    if (idx < 0) {
      Violate(who + ": unexpected model " + project + "." + name);
      continue;
    }
    if (project == "soak") statics_found.push_back(idx);
    Result<FetchResult> r =
        mq.GetIntermediates({project + "." + name + ".pred.*"}, kRows);
    if (!r.ok()) {
      Violate(who + ": post-hoc fetch " + project + "." + name + ": " +
              r.status().ToString());
      continue;
    }
    VerifyFetchResult(*r, idx, kRows, who + " post-hoc " + project + "." + name);
  }
  Result<uint64_t> vacuumed = mq.Vacuum();
  if (!vacuumed.ok()) {
    Violate(who + ": post-hoc vacuum failed: " + vacuumed.status().ToString());
  } else if (!statics_found.empty()) {
    // Vacuum must not eat live data.
    const int idx = statics_found[0];
    Result<FetchResult> r = mq.GetIntermediates(
        {"soak.m" + std::to_string(idx) + ".pred.*"}, kRows);
    if (!r.ok()) {
      Violate(who + ": fetch after post-hoc vacuum: " + r.status().ToString());
    } else {
      VerifyFetchResult(*r, idx, kRows, who + " after post-hoc vacuum");
    }
  }
  return statics_found;
}

// ---------------------------------------------------------------------
// One soak run (single-node or 3-shard cluster).
// ---------------------------------------------------------------------

void RunClients(const Config& cfg, uint16_t port, double duration_sec,
                ChurnView* churn, std::function<void()> mid_phase) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < cfg.clients; ++i) {
    threads.emplace_back(ClientWorker, std::cref(cfg), port, i, &stop, churn);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_sec);
  while (std::chrono::steady_clock::now() < deadline &&
         ViolationCount() == 0) {
    if (mid_phase) mid_phase();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
}

void RunSingleNode(Config cfg, const std::string& workdir) {
  cfg.mode = "single";
  const std::string store_dir = workdir + "/single_store";
  BuildSeedStore(store_dir);

  ServerSlot server;
  server.port = PickPort();
  server.log = workdir + "/single_server.log";
  server.args = {cfg.self_path, "--serve-child", store_dir,
                 std::to_string(server.port), "4",
                 std::to_string(cfg.seed + 1),  // churn on
                 cfg.pressure ? "1" : "0"};
  if (!EnsureUp(&server, "", 1, "[single spawn]")) return;

  ChurnView churn;
  const double warmup = cfg.duration_sec * 0.3;
  const double storm = cfg.duration_sec - warmup;

  std::printf("single-node: warmup %.1fs (%d clients, no crashes)\n", warmup,
              cfg.clients);
  RunClients(cfg, server.port, warmup, &churn, nullptr);

  std::printf("single-node: storm %.1fs (crash injection %s)\n", storm,
              cfg.crash ? "ON" : "off");
  {
    std::atomic<bool> stop_supervisor{false};
    std::thread supervisor;
    if (cfg.crash) {
      supervisor = std::thread(SupervisorLoop, std::cref(cfg),
                               std::vector<ServerSlot*>{&server},
                               /*arm_faults=*/true, &stop_supervisor);
    }
    RunClients(cfg, server.port, storm, &churn, nullptr);
    stop_supervisor.store(true, std::memory_order_release);
    if (supervisor.joinable()) supervisor.join();
  }

  // The supervisor may have left an armed child dead; make sure the final
  // incumbent is alive for the clean-drain check.
  int status = 0;
  if (TryReap(server.pid, &status)) {
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code != FaultInjector::kKillExitCode) {
      Violate("[single] server died unexpectedly (exit " +
              std::to_string(code) + ")\n--- log tail ---\n" +
              ReadFileTail(server.log));
      return;
    }
    if (!EnsureUp(&server, "", 1, "[single final respawn]")) return;
  }
  ScrapeAndCheck(&server, "[single final scrape]");

  const int code = StopClean(server.pid);
  const std::string tail = ReadFileTail(server.log);
  if (code != 0) {
    Violate("[single drain] server exited " + std::to_string(code) +
            " on SIGTERM (3 = drain accounting)\n--- log tail ---\n" + tail);
  } else if (tail.find("soak-drained:") == std::string::npos) {
    Violate("[single drain] no drain summary in the server log");
  }

  const std::vector<int> statics =
      VerifyStoreOracle(store_dir, "[single oracle]");
  if (statics.size() != static_cast<size_t>(kStaticModels)) {
    Violate("[single oracle] expected " + std::to_string(kStaticModels) +
            " static models after recovery, found " +
            std::to_string(statics.size()));
  }
  std::printf("single-node: done (%llu server incarnations)\n",
              static_cast<unsigned long long>(server.incarnation));
}

void RunCluster(Config cfg, const std::string& workdir) {
  cfg.mode = "cluster";
  constexpr size_t kShards = 3;
  const std::string seed_dir = workdir + "/cluster_seed";
  const std::string shard_prefix = workdir + "/shard";
  BuildSeedStore(seed_dir);
  SplitSeedStore(seed_dir, shard_prefix, kShards);

  std::vector<ServerSlot> shards(kShards);
  std::vector<std::string> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    shards[i].port = PickPort();
    shards[i].log = workdir + "/shard" + std::to_string(i) + ".log";
    // Shards never churn (cfg churn_seed 0): imports into one shard
    // would not match the router's hash placement.
    shards[i].args = {cfg.self_path, "--serve-child",
                      shard_prefix + std::to_string(i),
                      std::to_string(shards[i].port), "2", "0",
                      cfg.pressure ? "1" : "0"};
    if (!EnsureUp(&shards[i], "", 1, "[cluster shard spawn]")) return;
    endpoints.push_back("127.0.0.1:" + std::to_string(shards[i].port));
  }
  ServerSlot router;
  router.port = PickPort();
  router.log = workdir + "/router.log";
  router.args = {cfg.self_path, "--router-child",
                 std::to_string(router.port)};
  for (const std::string& endpoint : endpoints) {
    router.args.push_back(endpoint);
  }
  if (!EnsureUp(&router, "", 1, "[cluster router spawn]")) return;

  ChurnView churn;  // stays empty: no churn project in cluster mode
  const double warmup = cfg.duration_sec * 0.3;
  const double storm = cfg.duration_sec - warmup;

  std::printf("cluster: warmup %.1fs (%d clients via router)\n", warmup,
              cfg.clients);
  RunClients(cfg, router.port, warmup, &churn, nullptr);

  std::printf("cluster: storm %.1fs (shard crash injection %s)\n", storm,
              cfg.crash ? "ON" : "off");
  {
    std::atomic<bool> stop_supervisor{false};
    std::thread supervisor;
    if (cfg.crash) {
      std::vector<ServerSlot*> victims;
      for (ServerSlot& shard : shards) victims.push_back(&shard);
      // Shards take no writes, so labeled fault points never fire there:
      // cluster crashes are pure SIGKILL + restart.
      supervisor = std::thread(SupervisorLoop, std::cref(cfg), victims,
                               /*arm_faults=*/false, &stop_supervisor);
    }
    RunClients(cfg, router.port, storm, &churn, nullptr);
    stop_supervisor.store(true, std::memory_order_release);
    if (supervisor.joinable()) supervisor.join();
  }

  for (size_t i = 0; i < kShards; ++i) {
    int status = 0;
    if (TryReap(shards[i].pid, &status)) {
      if (!EnsureUp(&shards[i], "", 1, "[cluster final respawn]")) return;
    }
  }
  const int router_code = StopClean(router.pid);
  const std::string router_tail = ReadFileTail(router.log);
  if (router_code != 0) {
    Violate("[cluster drain] router exited " + std::to_string(router_code) +
            "\n--- log tail ---\n" + router_tail);
  } else if (router_tail.find("soak-routed") == std::string::npos) {
    Violate("[cluster drain] no drain marker in the router log");
  }
  for (size_t i = 0; i < kShards; ++i) {
    const int code = StopClean(shards[i].pid);
    if (code != 0) {
      Violate("[cluster drain] shard " + std::to_string(i) + " exited " +
              std::to_string(code) + " on SIGTERM\n--- log tail ---\n" +
              ReadFileTail(shards[i].log));
    }
  }

  // Post-hoc oracle across the shard set: every shard reopens clean, and
  // the union of surviving static models is exactly the full set (each
  // model lives on exactly one shard).
  std::vector<int> all_statics;
  for (size_t i = 0; i < kShards; ++i) {
    const std::vector<int> found = VerifyStoreOracle(
        shard_prefix + std::to_string(i),
        "[cluster oracle shard " + std::to_string(i) + "]");
    all_statics.insert(all_statics.end(), found.begin(), found.end());
  }
  std::vector<bool> seen(kStaticModels, false);
  for (int idx : all_statics) {
    if (idx < 0 || idx >= kStaticModels || seen[static_cast<size_t>(idx)]) {
      Violate("[cluster oracle] static model soak.m" + std::to_string(idx) +
              " duplicated or out of range across shards");
    } else {
      seen[static_cast<size_t>(idx)] = true;
    }
  }
  for (int i = 0; i < kStaticModels; ++i) {
    if (!seen[static_cast<size_t>(i)]) {
      Violate("[cluster oracle] static model soak.m" + std::to_string(i) +
              " lost from every shard");
    }
  }
  uint64_t incarnations = 0;
  for (const ServerSlot& shard : shards) incarnations += shard.incarnation;
  std::printf("cluster: done (%llu shard incarnations)\n",
              static_cast<unsigned long long>(incarnations));
}

// ---------------------------------------------------------------------
// --self-check: prove the net catches a real fault. Flip one payload
// byte inside a sealed partition, serve the store, and require the
// harness to detect it (via the corruption counter and/or failed oracle
// probes). Exits 0 iff the injected fault WAS caught and reported.
// ---------------------------------------------------------------------

int RunSelfCheck(Config cfg, const std::string& workdir) {
  cfg.mode = "single";
  const std::string store_dir = workdir + "/selfcheck_store";
  BuildSeedStore(store_dir);

  bool flipped = false;
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("part-", 0) == 0 && name.ends_with(".mq")) {
      std::fstream f(entry.path(),
                     std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(static_cast<std::streamoff>(kEnvelopeHeaderSize + 7));
      char b = 0x7f;
      f.write(&b, 1);
      flipped = true;
      break;
    }
  }
  if (!flipped) {
    std::fprintf(stderr, "self-check: no sealed partition file to corrupt\n");
    return 1;
  }
  std::printf("self-check: flipped one payload byte in a sealed partition\n");

  ServerSlot server;
  server.port = PickPort();
  server.log = workdir + "/selfcheck_server.log";
  server.args = {cfg.self_path, "--serve-child", store_dir,
                 std::to_string(server.port), "2", "0", "0"};
  if (!EnsureUp(&server, "", 1, "[self-check spawn]")) return 1;

  // Probe every static model so the corrupted partition is read, then
  // audit the metrics the soak checkers watch.
  size_t anomalies = 0;
  {
    net::ClientOptions options = ProbeOptions(server.port);
    options.request_timeout_sec = 8;
    net::Client client(options);
    for (int idx = 0; idx < kStaticModels; ++idx) {
      FetchRequest req;
      req.project = "soak";
      req.model = "m" + std::to_string(idx);
      req.intermediate = "pred";
      req.n_ex = kRows;
      Result<FetchResult> r = client.Fetch(req);
      if (!r.ok()) {
        anomalies++;
        std::printf("self-check: fetch soak.m%d failed as expected: %s\n",
                    idx, r.status().ToString().c_str());
        continue;
      }
      for (uint64_t row = 0; row < kRows; ++row) {
        if (r->columns[0][row] != Col0(idx, row) ||
            r->columns[1][row] != Col1(idx, row)) {
          anomalies++;
          std::printf("self-check: soak.m%d row %llu diverged\n", idx,
                      static_cast<unsigned long long>(row));
          break;
        }
      }
    }
    Result<std::string> metrics = client.Metrics();
    if (metrics.ok()) {
      const double corruptions =
          ParseMetric(*metrics, "mistique_corruptions_detected");
      if (corruptions > 0) {
        anomalies++;
        std::printf("self-check: mistique_corruptions_detected = %.0f\n",
                    corruptions);
      }
    }
  }
  StopClean(server.pid);

  if (anomalies == 0) {
    Violate("[self-check] injected bit-flip went completely undetected");
    return 1;
  }
  std::printf(
      "SELF-CHECK PASSED: injected bit-flip caught (%zu anomalies "
      "reported)\nreproduce: %s\n",
      anomalies, ReproCommand(cfg).c_str());
  return 0;
}

// ---------------------------------------------------------------------

int Main(int argc, char** argv) {
  // Internal child modes first: exact argv contracts, no flag parsing.
  if (argc >= 2 && std::strcmp(argv[1], "--serve-child") == 0) {
    if (argc != 6 && argc != 7) return 2;
    return RunServeChild(
        argv[2], static_cast<uint16_t>(std::strtoul(argv[3], nullptr, 10)),
        std::strtoull(argv[4], nullptr, 10),
        std::strtoull(argv[5], nullptr, 10),
        argc == 7 && std::strcmp(argv[6], "1") == 0);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--router-child") == 0) {
    if (argc < 4) return 2;
    std::vector<std::string> endpoints;
    for (int i = 3; i < argc; ++i) endpoints.push_back(argv[i]);
    return RunRouterChild(
        static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10)), endpoints);
  }

  Config cfg;
  cfg.self_path = argv[0];
  cfg.seed = static_cast<uint64_t>(bench::EnvInt("SOAK_SEED", 1));
  cfg.clients = bench::EnvInt("SOAK_CLIENTS", 8);
  cfg.duration_sec = bench::EnvDouble("SOAK_DURATION_SEC", 20);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--clients" && i + 1 < argc) {
      cfg.clients = std::atoi(argv[++i]);
    } else if (arg == "--duration-sec" && i + 1 < argc) {
      cfg.duration_sec = std::atof(argv[++i]);
    } else if (arg == "--mode" && i + 1 < argc) {
      cfg.mode = argv[++i];
    } else if (arg == "--crash") {
      cfg.crash = true;
    } else if (arg == "--self-check") {
      cfg.self_check = true;
    } else if (arg == "--pressure") {
      cfg.pressure = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--clients N] [--duration-sec D] "
                   "[--mode single|cluster|both] [--crash] [--self-check] "
                   "[--pressure]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.clients < 1) cfg.clients = 1;

  // SOAK_WORKDIR keeps stores and server logs around after exit (CI
  // uploads them as artifacts on failure); default is a self-cleaning
  // scratch directory.
  std::string workdir;
  std::unique_ptr<bench::BenchDir> scratch;
  if (const char* env = std::getenv("SOAK_WORKDIR"); env != nullptr && *env) {
    workdir = env;
    fs::remove_all(workdir);
    fs::create_directories(workdir);
  } else {
    scratch = std::make_unique<bench::BenchDir>("soak_harness");
    workdir = scratch->path();
  }
  std::printf(
      "soak: seed=%llu clients=%d duration=%.0fs mode=%s crash=%s "
      "pressure=%s\n",
      static_cast<unsigned long long>(cfg.seed), cfg.clients,
      cfg.duration_sec, cfg.mode.c_str(), cfg.crash ? "on" : "off",
      cfg.pressure ? "on" : "off");

  if (cfg.self_check) return RunSelfCheck(cfg, workdir);

  if (cfg.mode == "single" || cfg.mode == "both") {
    RunSingleNode(cfg, workdir);
  }
  if (ViolationCount() == 0 &&
      (cfg.mode == "cluster" || cfg.mode == "both")) {
    RunCluster(cfg, workdir);
  }

  std::lock_guard<std::mutex> lock(g_violation_mutex);
  if (!g_violations.empty()) {
    std::fprintf(stderr, "\nsoak FAILED: %zu invariant violation(s)\n",
                 g_violations.size());
    for (const std::string& v : g_violations) {
      std::fprintf(stderr, "  - %s\n", v.c_str());
    }
    std::fprintf(stderr, "reproduce: %s\n", ReproCommand(cfg).c_str());
    return 1;
  }
  std::printf("soak OK: zero invariant violations (seed %llu)\n",
              static_cast<unsigned long long>(cfg.seed));
  return 0;
}

}  // namespace
}  // namespace mistique

int main(int argc, char** argv) { return mistique::Main(argc, argv); }
