// Reproduces Fig. 7: validating the query cost model on CIFAR10_VGG16.
//  (a) time to re-run the model up to each layer (fixed model-load cost +
//      per-layer forward cost), for several n_ex.
//  (b) time to read each layer's stored intermediate under different
//      quantization schemes (8BIT_QT slowest per byte due to
//      reconstruction; pool(32) fastest).
//
// Scale knob: MISTIQUE_DNN_EXAMPLES (default 256; paper 50000).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

namespace mistique {
namespace bench {
namespace {

const int kLayers[] = {1, 5, 11, 18, 21};

void RunRerunTimes(const std::string& workspace,
                   std::shared_ptr<const Tensor> input) {
  PrintHeader(
      "Fig 7a: t_rerun by layer and n_ex (paper: linear in layer depth and "
      "n_ex, fixed 1.2s model-load offset)");

  MistiqueOptions opts;
  opts.store.directory = workspace + "/rerun_store";
  opts.strategy = StorageStrategy::kAdaptive;  // Metadata only; no storage.
  opts.gamma_min = 1e18;
  Mistique mq;
  CheckOk(mq.Open(opts), "open");
  auto net = BuildVgg16Cifar({});
  CheckOk(mq.LogNetwork(net.get(), input, "cifar", "vgg").status(), "log");

  const int total = input->n;
  std::vector<int> n_ex_values = {total / 4, total / 2, total};

  std::printf("%-8s", "layer");
  for (int n_ex : n_ex_values) std::printf(" n_ex=%-6d", n_ex);
  std::printf("  (measured wall seconds)\n");
  for (int layer : kLayers) {
    std::printf("%-8d", layer);
    for (int n_ex : n_ex_values) {
      FetchRequest req;
      req.project = "cifar";
      req.model = "vgg";
      req.intermediate = "layer" + std::to_string(layer);
      req.n_ex = static_cast<uint64_t>(n_ex);
      req.force_read = false;
      Stopwatch watch;
      CheckOk(mq.Fetch(req).status(), "rerun fetch");
      std::printf(" %9.3fs ", watch.ElapsedSeconds());
    }
    std::printf("\n");
  }
}

void RunReadTimes(const std::string& workspace,
                  std::shared_ptr<const Tensor> input) {
  PrintHeader(
      "Fig 7b: t_read by layer and scheme (paper: 8BIT_QT slowest due to "
      "reconstruction, then LP_QT, pool(2), pool(32))");

  struct Scheme {
    const char* name;
    QuantScheme scheme;
    int sigma;
  };
  const Scheme schemes[] = {
      {"8BIT_QT", QuantScheme::kKBit, 1},
      {"LP_QT(16)", QuantScheme::kLp16, 1},
      {"pool(2)", QuantScheme::kLp32, 2},
      {"pool(32)", QuantScheme::kLp32, 32},
  };

  std::vector<std::unique_ptr<Mistique>> stores;
  for (const Scheme& scheme : schemes) {
    MistiqueOptions opts;
    opts.store.directory = workspace + "/read_" + scheme.name;
    opts.strategy = StorageStrategy::kDedup;
    opts.dnn_scheme = scheme.scheme;
    opts.pool_sigma = scheme.sigma;
    opts.row_block_size = 128;
    auto mq = std::make_unique<Mistique>();
    CheckOk(mq->Open(opts), "open");
    auto net = BuildVgg16Cifar({});
    CheckOk(mq->LogNetwork(net.get(), input, "cifar", "vgg").status(), "log");
    CheckOk(mq->Flush(), "flush");
    stores.push_back(std::move(mq));
  }

  std::printf("%-8s", "layer");
  for (const Scheme& scheme : schemes) std::printf(" %-11s", scheme.name);
  std::printf(" (seconds to read all rows, all columns)\n");
  for (int layer : kLayers) {
    std::printf("%-8d", layer);
    for (size_t s = 0; s < stores.size(); ++s) {
      FetchRequest req;
      req.project = "cifar";
      req.model = "vgg";
      req.intermediate = "layer" + std::to_string(layer);
      req.force_read = true;
      Stopwatch watch;
      CheckOk(stores[s]->Fetch(req).status(), "read fetch");
      std::printf(" %9.4fs ", watch.ElapsedSeconds());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::BenchDir workspace("fig7");
  mistique::CifarConfig config;
  config.num_examples = mistique::bench::EnvInt("MISTIQUE_DNN_EXAMPLES", 256);
  const mistique::CifarData data = mistique::GenerateCifar(config);
  auto input = std::make_shared<mistique::Tensor>(data.images);
  mistique::bench::RunRerunTimes(workspace.path(), input);
  mistique::bench::RunReadTimes(workspace.path(), input);
  std::printf("\n");
  return 0;
}
