// Reproduces Fig. 9: effect of quantization on the VIS query (mean
// activation heatmap of a mid-network layer). The paper shows the heatmap
// is visually identical for full precision, LP_QT(16), 8BIT_QT and pool
// schemes, but degrades for 3BIT_QT and THRESHOLD_QT. We quantify
// "visually identical" as mean-abs-deviation (in units of the heatmap's
// dynamic range) and Spearman rank correlation against full precision —
// a visualization with <256 shades is faithful when ranks are preserved.
//
// Scale knob: MISTIQUE_DNN_EXAMPLES (default 256; paper 50000).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

namespace mistique {
namespace bench {
namespace {

namespace dq = diagnostics;

std::vector<double> HeatmapUnder(const std::string& workspace,
                                 std::shared_ptr<const Tensor> input,
                                 const char* tag, QuantScheme scheme,
                                 int kbits, int sigma) {
  MistiqueOptions opts;
  opts.store.directory = workspace + "/" + tag;
  opts.strategy = StorageStrategy::kDedup;
  opts.dnn_scheme = scheme;
  opts.kbits = kbits;
  opts.pool_sigma = sigma;
  opts.row_block_size = 128;
  Mistique mq;
  CheckOk(mq.Open(opts), "open");
  auto net = BuildVgg16Cifar({});
  CheckOk(mq.LogNetwork(net.get(), input, "cifar", "vgg").status(), "log");
  CheckOk(mq.Flush(), "flush");

  // VIS: mean activation per channel of layer 9 (conv3_3). Per-channel
  // means aggregate over the channel's (possibly pooled) map columns, so
  // heatmaps are comparable across pooling levels.
  FetchRequest req;
  req.project = "cifar";
  req.model = "vgg";
  req.intermediate = "layer9";
  req.force_read = true;
  FetchResult result = CheckOk(mq.Fetch(req), "fetch");
  const std::vector<double> col_means = dq::MeanPerColumn(result.columns);

  const ModelId id = CheckOk(mq.metadata().FindModel("cifar", "vgg"), "find");
  const IntermediateInfo* interm = CheckOk(
      std::as_const(mq.metadata()).FindIntermediate(id, "layer9"), "interm");
  std::vector<double> heatmap(static_cast<size_t>(interm->channels), 0.0);
  const size_t per_map =
      static_cast<size_t>(interm->height) * interm->width;
  for (int c = 0; c < interm->channels; ++c) {
    double sum = 0;
    for (size_t i = 0; i < per_map; ++i) {
      sum += col_means[static_cast<size_t>(c) * per_map + i];
    }
    heatmap[static_cast<size_t>(c)] = sum / static_cast<double>(per_map);
  }
  return heatmap;
}

void Run() {
  BenchDir workspace("fig9");
  CifarConfig config;
  config.num_examples = EnvInt("MISTIQUE_DNN_EXAMPLES", 256);
  const CifarData data = GenerateCifar(config);
  auto input = std::make_shared<Tensor>(data.images);

  PrintHeader(
      "Fig 9: VIS heatmap fidelity under quantization (paper: full, f16, "
      "8bit, pool visually identical; 3bit & threshold visibly off)");

  const std::vector<double> reference = HeatmapUnder(
      workspace.path(), input, "full", QuantScheme::kNone, 8, 1);
  double range = 0;
  for (double v : reference) range = std::max(range, std::abs(v));
  range = std::max(range, 1e-12);

  struct SchemeRow {
    const char* name;
    QuantScheme scheme;
    int kbits;
    int sigma;
  };
  const SchemeRow rows[] = {
      {"LP_QT(16)", QuantScheme::kLp16, 8, 1},
      {"8BIT_QT", QuantScheme::kKBit, 8, 1},
      {"POOL_QT(2)", QuantScheme::kLp32, 8, 2},
      {"POOL_QT(32)", QuantScheme::kLp32, 8, 32},
      {"3BIT_QT", QuantScheme::kKBit, 3, 1},
      {"THRESHOLD_QT", QuantScheme::kThreshold, 8, 1},
  };

  std::printf("%-14s %16s %12s\n", "scheme", "MAD (of range)", "rank corr");
  std::printf("%-14s %16s %12s\n", "full precision", "0.0000", "1.0000");
  for (const SchemeRow& row : rows) {
    const std::vector<double> heatmap = HeatmapUnder(
        workspace.path(), input, row.name, row.scheme, row.kbits, row.sigma);
    const double mad = dq::MeanAbsDeviation(reference, heatmap) / range;
    const double rank = dq::SpearmanCorrelation(reference, heatmap);
    std::printf("%-14s %15.4f%% %12.4f\n", row.name, 100.0 * mad, rank);
  }
  std::printf(
      "\nexpected shape: LP/8BIT/POOL rows near 0%% MAD and rank ~1.0;\n"
      "3BIT_QT and THRESHOLD_QT visibly worse on both metrics.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::Run();
  std::printf("\n");
  return 0;
}
