// Ablations for the design choices DESIGN.md §5 calls out (not a paper
// figure; supporting evidence for defaults):
//  1. RowBlock size — point-read latency vs storage footprint.
//  2. Zone-map scans — selective predicate via Scan() vs brute-force
//     fetch-all-and-filter.
//  3. LSH similarity threshold tau — Zillow storage at different
//     clustering aggressiveness.
//
// Knobs: MISTIQUE_DNN_EXAMPLES (default 256), MISTIQUE_ZILLOW_PROPS
// (default 2000).

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

namespace mistique {
namespace bench {
namespace {

void RowBlockAblation(const std::string& workspace,
                      std::shared_ptr<const Tensor> input) {
  PrintHeader(
      "Ablation 1: RowBlock size (reads round up to block granularity; "
      "smaller blocks -> cheaper point reads, more chunks to manage)");

  std::printf("%-10s %14s %16s %16s\n", "block", "footprint",
              "1-row fetch", "all-rows fetch");
  for (uint64_t block : {64u, 256u, 1024u}) {
    MistiqueOptions opts;
    opts.store.directory = workspace + "/rb" + std::to_string(block);
    opts.strategy = StorageStrategy::kDedup;
    opts.dnn_scheme = QuantScheme::kLp32;
    opts.pool_sigma = 2;
    opts.row_block_size = block;
    opts.store.memory_budget_bytes = 4u << 20;  // Small pool: reads cost.
    // Partitions sized near the block scale so a point read touches one
    // small partition rather than decompressing a 4MB default unit.
    opts.store.partition_target_bytes = 256u << 10;
    Mistique mq;
    CheckOk(mq.Open(opts), "open");
    auto net = BuildCifarCnn({});
    CheckOk(mq.LogNetwork(net.get(), input, "cifar", "cnn").status(), "log");
    CheckOk(mq.Flush(), "flush");

    FetchRequest req;
    req.project = "cifar";
    req.model = "cnn";
    req.intermediate = "layer4";
    req.force_read = true;

    req.row_ids = {static_cast<uint64_t>(input->n - 1)};
    Stopwatch watch;
    CheckOk(mq.Fetch(req).status(), "point");
    const double point_sec = watch.ElapsedSeconds();

    req.row_ids.clear();
    watch.Reset();
    CheckOk(mq.Fetch(req).status(), "full");
    const double full_sec = watch.ElapsedSeconds();

    std::printf("%-10llu %14s %15.4fs %15.4fs\n",
                static_cast<unsigned long long>(block),
                HumanBytes(static_cast<double>(mq.StorageFootprintBytes()))
                    .c_str(),
                point_sec, full_sec);
  }
}

void ZoneMapAblation(const std::string& workspace,
                     std::shared_ptr<const Tensor> input) {
  PrintHeader(
      "Ablation 2: zone-map scans vs brute force (narrow predicate on a "
      "neuron column)");

  MistiqueOptions opts;
  opts.store.directory = workspace + "/scan";
  opts.strategy = StorageStrategy::kDedup;
  opts.dnn_scheme = QuantScheme::kLp32;
  opts.pool_sigma = 2;
  opts.row_block_size = 64;
  opts.store.memory_budget_bytes = 4u << 20;
  Mistique mq;
  CheckOk(mq.Open(opts), "open");
  auto net = BuildCifarCnn({});
  CheckOk(mq.LogNetwork(net.get(), input, "cifar", "cnn").status(), "log");
  CheckOk(mq.Flush(), "flush");

  // Probe a live neuron and a threshold near its maximum.
  FetchRequest probe;
  probe.project = "cifar";
  probe.model = "cnn";
  probe.intermediate = "layer7";
  probe.force_read = true;
  FetchResult fc1 = CheckOk(mq.Fetch(probe), "probe");
  size_t busiest = 0;
  double best_max = -1;
  for (size_t n = 0; n < fc1.columns.size(); ++n) {
    for (double v : fc1.columns[n]) {
      if (v > best_max) {
        best_max = v;
        busiest = n;
      }
    }
  }

  ScanRequest scan;
  scan.project = "cifar";
  scan.model = "cnn";
  scan.intermediate = "layer7";
  scan.predicate_column = "n" + std::to_string(busiest);
  scan.lo = best_max * 0.9;

  Stopwatch watch;
  ScanResult via_scan = CheckOk(mq.Scan(scan), "scan");
  const double scan_sec = watch.ElapsedSeconds();

  watch.Reset();
  FetchRequest all = probe;
  all.columns = {scan.predicate_column};
  FetchResult column = CheckOk(mq.Fetch(all), "full column");
  std::vector<uint64_t> brute;
  for (size_t i = 0; i < column.columns[0].size(); ++i) {
    if (column.columns[0][i] >= scan.lo) brute.push_back(i);
  }
  const double brute_sec = watch.ElapsedSeconds();

  std::printf("matches: %zu rows (scan) vs %zu rows (brute force)\n",
              via_scan.row_ids.size(), brute.size());
  std::printf("blocks: %llu scanned, %llu pruned by zone maps\n",
              static_cast<unsigned long long>(via_scan.blocks_scanned),
              static_cast<unsigned long long>(via_scan.blocks_pruned));
  std::printf("time: %.4fs (scan) vs %.4fs (fetch-all + filter)\n",
              scan_sec, brute_sec);
}

void TauAblation(const std::string& workspace) {
  PrintHeader(
      "Ablation 3: LSH similarity threshold tau (lower tau -> larger "
      "clusters -> better co-location but noisier partitions)");

  ZillowConfig config;
  config.num_properties =
      static_cast<size_t>(EnvInt("MISTIQUE_ZILLOW_PROPS", 2000));
  config.num_train = config.num_properties * 3 / 4;
  config.num_test = config.num_properties / 4;
  const std::string csv_dir = workspace + "/csv";
  CheckOk(WriteZillowCsvs(GenerateZillow(config), csv_dir), "csvs");

  std::printf("%-8s %14s %12s\n", "tau", "footprint", "clusters");
  for (double tau : {0.3, 0.5, 0.8}) {
    MistiqueOptions opts;
    opts.store.directory = workspace + "/tau" + std::to_string(tau);
    opts.strategy = StorageStrategy::kDedup;
    opts.dedup.tau = tau;
    Mistique mq;
    CheckOk(mq.Open(opts), "open");
    std::vector<std::unique_ptr<Pipeline>> keepalive;
    for (int variant = 0; variant < 3; ++variant) {
      auto p = CheckOk(BuildZillowPipeline(4, variant, csv_dir), "build");
      CheckOk(mq.LogPipeline(p.get(), "zillow").status(), "log");
      keepalive.push_back(std::move(p));
    }
    CheckOk(mq.Flush(), "flush");
    std::printf("%-8.1f %14s %12llu\n", tau,
                HumanBytes(static_cast<double>(mq.StorageFootprintBytes()))
                    .c_str(),
                static_cast<unsigned long long>(
                    mq.dedup().clusters_created()));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::BenchDir workspace("ablation");
  mistique::CifarConfig config;
  // Block/pruning effects need several RowBlocks to show.
  config.num_examples =
      std::max(512, mistique::bench::EnvInt("MISTIQUE_DNN_EXAMPLES", 512));
  const mistique::CifarData data = mistique::GenerateCifar(config);
  auto input = std::make_shared<mistique::Tensor>(data.images);
  mistique::bench::RowBlockAblation(workspace.path(), input);
  mistique::bench::ZoneMapAblation(workspace.path(), input);
  mistique::bench::TauAblation(workspace.path());
  std::printf("\n");
  return 0;
}
