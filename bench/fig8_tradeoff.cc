// Reproduces Fig. 8: the read-vs-re-run trade-off across layers and n_ex,
// measured (8a) and as predicted by the cost model (8b). The paper's
// finding: reading wins everywhere except Layer1 at large n_ex (huge
// intermediate, trivially cheap to recompute).
//
// Scale knob: MISTIQUE_DNN_EXAMPLES (default 256; paper 50000).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

namespace mistique {
namespace bench {
namespace {

const int kLayers[] = {1, 5, 11, 18, 21};

void Run() {
  BenchDir workspace("fig8");
  const int total = EnvInt("MISTIQUE_DNN_EXAMPLES", 256);
  CifarConfig config;
  config.num_examples = total;
  const CifarData data = GenerateCifar(config);
  auto input = std::make_shared<Tensor>(data.images);

  MistiqueOptions opts;
  opts.store.directory = workspace.path() + "/store";
  opts.strategy = StorageStrategy::kDedup;
  // Full-precision store + a small buffer pool: reads go to disk and pay
  // decompression, which is the regime where the paper's Layer1 anomaly
  // (huge, cheap-to-recompute first layer) appears. On the paper's GPU
  // testbed the same imbalance arises at pool(2) with 50K examples.
  opts.dnn_scheme = QuantScheme::kNone;
  opts.pool_sigma = 1;
  opts.store.memory_budget_bytes = 2u << 20;
  opts.row_block_size = 128;
  opts.calibrate_on_open = true;
  Mistique mq;
  CheckOk(mq.Open(opts), "open");
  auto net = BuildVgg16Cifar({});
  CheckOk(mq.LogNetwork(net.get(), input, "cifar", "vgg").status(), "log");
  CheckOk(mq.Flush(), "flush");

  const int n_ex_values[] = {total / 8, total / 4, total / 2, total};

  PrintHeader(
      "Fig 8a: measured fetch seconds — read (R) vs re-run (X) per layer "
      "and n_ex");
  std::printf("%-8s", "layer");
  for (int n_ex : n_ex_values) std::printf("   n_ex=%-14d", n_ex);
  std::printf("\n");
  for (int layer : kLayers) {
    std::printf("%-8d", layer);
    for (int n_ex : n_ex_values) {
      FetchRequest req;
      req.project = "cifar";
      req.model = "vgg";
      req.intermediate = "layer" + std::to_string(layer);
      req.n_ex = static_cast<uint64_t>(n_ex);

      req.force_read = true;
      Stopwatch watch;
      CheckOk(mq.Fetch(req).status(), "read");
      const double read_sec = watch.ElapsedSeconds();

      req.force_read = false;
      watch.Reset();
      CheckOk(mq.Fetch(req).status(), "rerun");
      const double rerun_sec = watch.ElapsedSeconds();
      std::printf(" R%7.3f X%7.3f%s", read_sec, rerun_sec,
                  read_sec <= rerun_sec ? " " : "!");
    }
    std::printf("\n");
  }
  std::printf("('!' marks cells where re-running beat reading)\n");

  PrintHeader("Fig 8b: the same trade-off as PREDICTED by the cost model");
  std::printf("%-8s", "layer");
  for (int n_ex : n_ex_values) std::printf("   n_ex=%-14d", n_ex);
  std::printf("\n");
  int agreements = 0, cells = 0;
  for (int layer : kLayers) {
    std::printf("%-8d", layer);
    for (int n_ex : n_ex_values) {
      FetchRequest req;
      req.project = "cifar";
      req.model = "vgg";
      req.intermediate = "layer" + std::to_string(layer);
      req.n_ex = static_cast<uint64_t>(n_ex);
      req.row_ids = {0};  // Cheap fetch; we only want the predictions.
      req.row_ids.clear();
      req.n_ex = 1;
      FetchResult probe = CheckOk(mq.Fetch(req), "probe");
      // Re-predict at the requested n_ex via the cost model directly.
      const ModelId id =
          CheckOk(mq.metadata().FindModel("cifar", "vgg"), "find");
      const ModelInfo* model =
          CheckOk(std::as_const(mq.metadata()).GetModel(id), "model");
      const IntermediateInfo* interm = CheckOk(
          std::as_const(mq.metadata())
              .FindIntermediate(id, "layer" + std::to_string(layer)),
          "interm");
      const double pred_read = mq.cost_model().ReadSeconds(
          *interm, static_cast<uint64_t>(n_ex));
      const double pred_rerun = mq.cost_model().RerunSeconds(
          *model, *interm, static_cast<uint64_t>(n_ex));
      (void)probe;
      std::printf(" R%7.3f X%7.3f%s", pred_read, pred_rerun,
                  pred_read <= pred_rerun ? " " : "!");

      // Agreement with the measured winner.
      FetchRequest m = req;
      m.n_ex = static_cast<uint64_t>(n_ex);
      m.force_read = true;
      Stopwatch watch;
      CheckOk(mq.Fetch(m).status(), "read2");
      const double read_sec = watch.ElapsedSeconds();
      m.force_read = false;
      watch.Reset();
      CheckOk(mq.Fetch(m).status(), "rerun2");
      const double rerun_sec = watch.ElapsedSeconds();
      agreements += (pred_read <= pred_rerun) == (read_sec <= rerun_sec);
      cells++;
    }
    std::printf("\n");
  }
  std::printf(
      "cost model picked the measured winner in %d/%d cells\n", agreements,
      cells);
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::Run();
  std::printf("\n");
  return 0;
}
