// Reproduces Fig. 6: intermediate storage cost.
//  (a) Zillow: raw data vs STORE_ALL vs DEDUP across 50 pipelines, plus the
//      cumulative-by-pipeline growth curve.
//  (b) CIFAR10_CNN / CIFAR10_VGG16: STORE_ALL, LP_QT, 8BIT_QT, POOL_QT(2),
//      POOL_QT(32), and POOL_QT(2)+DEDUP across training checkpoints.
//
// Scale knobs (paper values in brackets):
//   MISTIQUE_ZILLOW_PROPS     properties rows        (default 2000) [~3M]
//   MISTIQUE_ZILLOW_PIPELINES pipelines to log       (default 50)   [50]
//   MISTIQUE_DNN_EXAMPLES     images logged          (default 256)  [50000]
//   MISTIQUE_DNN_EPOCHS       checkpoints per model  (default 3)    [10]

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

namespace mistique {
namespace bench {
namespace {

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

void RunZillow(const std::string& workspace) {
  PrintHeader(
      "Fig 6a: Zillow storage cost (paper: raw 168MB, STORE_ALL 67GB, "
      "DEDUP 611MB => 110x)");

  ZillowConfig config;
  config.num_properties =
      static_cast<size_t>(EnvInt("MISTIQUE_ZILLOW_PROPS", 2000));
  config.num_train = config.num_properties * 3 / 4;
  config.num_test = config.num_properties / 4;
  const int num_pipelines = EnvInt("MISTIQUE_ZILLOW_PIPELINES", 50);

  const std::string csv_dir = workspace + "/zillow_csv";
  CheckOk(WriteZillowCsvs(GenerateZillow(config), csv_dir), "zillow csvs");
  const uint64_t raw_bytes = DirBytes(csv_dir);
  std::printf("raw input (3 csv files): %s\n",
              HumanBytes(static_cast<double>(raw_bytes)).c_str());

  struct StrategyRun {
    const char* name;
    StorageStrategy strategy;
    uint64_t total = 0;
    std::vector<uint64_t> cumulative;
  };
  StrategyRun runs[2] = {{"STORE_ALL", StorageStrategy::kStoreAll},
                         {"DEDUP", StorageStrategy::kDedup}};

  for (StrategyRun& run : runs) {
    MistiqueOptions opts;
    opts.store.directory =
        workspace + "/zillow_" + std::string(run.name);
    opts.strategy = run.strategy;
    Mistique mq;
    CheckOk(mq.Open(opts), "open");

    std::vector<std::unique_ptr<Pipeline>> pipelines;
    for (int i = 0; i < num_pipelines; ++i) {
      const int template_id = i / kNumZillowVariants + 1;
      const int variant = i % kNumZillowVariants;
      auto pipeline = CheckOk(
          BuildZillowPipeline(template_id, variant, csv_dir), "build");
      CheckOk(mq.LogPipeline(pipeline.get(), "zillow").status(), "log");
      pipelines.push_back(std::move(pipeline));
      CheckOk(mq.Flush(), "flush");
      run.cumulative.push_back(mq.StorageFootprintBytes());
    }
    run.total = mq.StorageFootprintBytes();
  }

  std::printf("\n%-12s %14s %10s\n", "strategy", "stored", "vs raw");
  for (const StrategyRun& run : runs) {
    std::printf("%-12s %14s %9.1fx\n", run.name,
                HumanBytes(static_cast<double>(run.total)).c_str(),
                static_cast<double>(run.total) /
                    static_cast<double>(raw_bytes));
  }
  std::printf("DEDUP reduction over STORE_ALL: %.1fx\n",
              static_cast<double>(runs[0].total) /
                  static_cast<double>(runs[1].total));

  std::printf("\ncumulative storage by #pipelines logged:\n");
  std::printf("%-10s %14s %14s\n", "#pipelines", "STORE_ALL", "DEDUP");
  for (size_t i = 0; i < runs[0].cumulative.size(); ++i) {
    if ((i + 1) % 5 == 0 || i == 0) {
      std::printf("%-10zu %14s %14s\n", i + 1,
                  HumanBytes(static_cast<double>(runs[0].cumulative[i]))
                      .c_str(),
                  HumanBytes(static_cast<double>(runs[1].cumulative[i]))
                      .c_str());
    }
  }
}

struct DnnScheme {
  const char* name;
  StorageStrategy strategy;
  QuantScheme scheme;
  int pool_sigma;
};

void RunDnn(const std::string& workspace, const char* which) {
  const int n_examples = EnvInt("MISTIQUE_DNN_EXAMPLES", 256);
  const int epochs = EnvInt("MISTIQUE_DNN_EPOCHS", 3);
  const bool is_vgg = std::string(which) == "vgg16";

  PrintHeader(is_vgg ? "Fig 6b: CIFAR10_VGG16 storage (paper: STORE_ALL "
                       "350GB, pool2 58GB=6x, pool32 4.19GB=83x, "
                       "pool2+DEDUP 5.997GB=60x)"
                     : "Fig 6b: CIFAR10_CNN storage (paper: STORE_ALL 242GB, "
                       "LP 128GB, 8BIT 72.4GB, pool2 39GB=6.2x, pool32 "
                       "2.53GB=95x; DEDUP adds little)");
  std::printf("examples=%d epochs=%d (paper: 50000 x 10)\n", n_examples,
              epochs);

  CifarConfig data_config;
  data_config.num_examples = n_examples;
  const CifarData data = GenerateCifar(data_config);
  auto input = std::make_shared<Tensor>(data.images);

  const DnnScheme schemes[] = {
      {"STORE_ALL(f32)", StorageStrategy::kStoreAll, QuantScheme::kLp32, 1},
      {"LP_QT(f16)", StorageStrategy::kStoreAll, QuantScheme::kLp16, 1},
      {"8BIT_QT", StorageStrategy::kStoreAll, QuantScheme::kKBit, 1},
      {"POOL_QT(2)", StorageStrategy::kStoreAll, QuantScheme::kLp32, 2},
      {"POOL_QT(32)", StorageStrategy::kStoreAll, QuantScheme::kLp32, 32},
      {"POOL_QT(2)+DEDUP", StorageStrategy::kDedup, QuantScheme::kLp32, 2},
  };

  std::printf("\n%-18s %14s %10s\n", "scheme", "stored", "vs f32");
  double store_all_bytes = 0;
  for (const DnnScheme& scheme : schemes) {
    MistiqueOptions opts;
    opts.store.directory = workspace + "/" + which + "_" + scheme.name;
    opts.strategy = scheme.strategy;
    opts.dnn_scheme = scheme.scheme;
    opts.pool_sigma = scheme.pool_sigma;
    opts.row_block_size = 128;
    Mistique mq;
    CheckOk(mq.Open(opts), "open");

    DnnScaleConfig scale;
    auto net = is_vgg ? BuildVgg16Cifar(scale) : BuildCifarCnn(scale);
    for (int epoch = 0; epoch < epochs; ++epoch) {
      if (epoch > 0) {
        // Simulated training step between checkpoints; for the VGG16
        // fine-tune only the FC head moves (trunk frozen).
        net->PerturbTrainable(1000 + static_cast<uint64_t>(epoch),
                              0.02);
      }
      CheckOk(mq.LogNetwork(net.get(), input, "cifar",
                            std::string(which) + "_ep" +
                                std::to_string(epoch))
                  .status(),
              "log network");
    }
    CheckOk(mq.Flush(), "flush");
    const double bytes = static_cast<double>(mq.StorageFootprintBytes());
    if (store_all_bytes == 0) store_all_bytes = bytes;
    std::printf("%-18s %14s %9.1fx\n", scheme.name,
                HumanBytes(bytes).c_str(), store_all_bytes / bytes);
  }
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::BenchDir workspace("fig6");
  mistique::bench::RunZillow(workspace.path());
  mistique::bench::RunDnn(workspace.path(), "cnn");
  mistique::bench::RunDnn(workspace.path(), "vgg16");
  std::printf("\n");
  return 0;
}
