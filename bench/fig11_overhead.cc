// Reproduces Fig. 11: pipeline logging overhead.
//  TRAD: total runtime of representative pipelines P1 / P5 / P9 under
//        no logging, ADAPTIVE, DEDUP, and STORE_ALL (paper: runtime tracks
//        bytes written; STORE_ALL worst, ADAPTIVE near-zero overhead).
//  DNN: CIFAR10_VGG16 logging time under no logging, f32, f16, 8BIT_QT,
//       pool(2), pool(4), pool(32) (paper: 19s plain; 252s f32; 151s f16;
//       379s 8bit; 56s pool2; 38s pool4; 20s pool32).
//
// Knobs: MISTIQUE_ZILLOW_PROPS (default 2000), MISTIQUE_DNN_EXAMPLES
// (default 256).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

namespace mistique {
namespace bench {
namespace {

void RunTrad(const std::string& workspace, const std::string& csv_dir) {
  PrintHeader(
      "Fig 11 (TRAD): pipeline runtime incl. logging (paper: STORE_ALL "
      "worst; DEDUP modest; ADAPTIVE low but non-zero)");

  const int templates[] = {1, 5, 9};
  std::printf("%-6s %12s %12s %12s %12s\n", "pipe", "NONE", "ADAPTIVE",
              "DEDUP", "STORE_ALL");
  for (int template_id : templates) {
    std::printf("P%-5d", template_id);

    // NONE: plain pipeline execution, no MISTIQUE.
    {
      auto pipeline =
          CheckOk(BuildZillowPipeline(template_id, 1, csv_dir), "build");
      PipelineContext ctx;
      Stopwatch watch;
      CheckOk(pipeline->Run(&ctx), "run");
      std::printf(" %11.3fs", watch.ElapsedSeconds());
    }

    const StorageStrategy strategies[] = {StorageStrategy::kAdaptive,
                                          StorageStrategy::kDedup,
                                          StorageStrategy::kStoreAll};
    for (StorageStrategy strategy : strategies) {
      MistiqueOptions opts;
      opts.store.directory = workspace + "/trad_" +
                             std::to_string(template_id) + "_" +
                             StorageStrategyName(strategy);
      opts.strategy = strategy;
      Mistique mq;
      CheckOk(mq.Open(opts), "open");
      // Warm the store with variant 0 (untimed), then time logging
      // variant 1 — the steady-state cost of logging one more pipeline,
      // which is where DEDUP's "stores little per extra pipeline" shows.
      auto warm =
          CheckOk(BuildZillowPipeline(template_id, 0, csv_dir), "build");
      CheckOk(mq.LogPipeline(warm.get(), "zillow").status(), "warm log");
      auto pipeline =
          CheckOk(BuildZillowPipeline(template_id, 1, csv_dir), "build");
      Stopwatch watch;
      CheckOk(mq.LogPipeline(pipeline.get(), "zillow").status(), "log");
      CheckOk(mq.Flush(), "flush");
      std::printf(" %11.3fs", watch.ElapsedSeconds());
    }
    std::printf("\n");
  }
  std::printf("(NOTE: LogPipeline includes a second calibration run of the "
              "pipeline,\n so MISTIQUE columns carry that constant too — "
              "compare columns against\n each other, not against NONE "
              "alone.)\n");
}

void RunDnn(const std::string& workspace,
            std::shared_ptr<const Tensor> input) {
  PrintHeader(
      "Fig 11 (DNN): CIFAR10_VGG16 logging overhead by scheme (paper: "
      "plain 19s, f32 252s, f16 151s, 8bit 379s, pool2 56s, pool4 38s, "
      "pool32 20s)");

  // Plain forward, no logging.
  {
    auto net = BuildVgg16Cifar({});
    Stopwatch watch;
    auto out = net->ForwardBatched(*input, 128);
    CheckOk(out.status(), "plain forward");
    std::printf("%-16s %10.3fs\n", "no logging", watch.ElapsedSeconds());
  }

  struct Scheme {
    const char* name;
    QuantScheme scheme;
    int sigma;
  };
  const Scheme schemes[] = {
      {"STORE_ALL(f32)", QuantScheme::kLp32, 1},
      {"LP_QT(f16)", QuantScheme::kLp16, 1},
      {"8BIT_QT", QuantScheme::kKBit, 1},
      {"POOL_QT(2)", QuantScheme::kLp32, 2},
      {"POOL_QT(4)", QuantScheme::kLp32, 4},
      {"POOL_QT(32)", QuantScheme::kLp32, 32},
  };
  for (const Scheme& scheme : schemes) {
    MistiqueOptions opts;
    opts.store.directory = workspace + "/dnn_" + scheme.name;
    opts.strategy = StorageStrategy::kStoreAll;
    opts.dnn_scheme = scheme.scheme;
    opts.pool_sigma = scheme.sigma;
    opts.row_block_size = 128;
    Mistique mq;
    CheckOk(mq.Open(opts), "open");
    auto net = BuildVgg16Cifar({});
    Stopwatch watch;
    CheckOk(mq.LogNetwork(net.get(), input, "cifar", "vgg").status(), "log");
    CheckOk(mq.Flush(), "flush");
    std::printf("%-16s %10.3fs\n", scheme.name, watch.ElapsedSeconds());
  }
  std::printf(
      "\nexpected shape: f32 > f16 > pool(2) > pool(4) > pool(32) ~= no "
      "logging.\n(Deviation from the paper: their Python 8BIT_QT was the "
      "most expensive\nscheme; our binning is a branch-free lower_bound, so "
      "8BIT_QT's cost sits\nnear f16 — byte volume, not binning, dominates "
      "here.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::BenchDir workspace("fig11");
  mistique::ZillowConfig config;
  config.num_properties = static_cast<size_t>(
      mistique::bench::EnvInt("MISTIQUE_ZILLOW_PROPS", 2000));
  config.num_train = config.num_properties * 3 / 4;
  config.num_test = config.num_properties / 4;
  const std::string csv_dir = workspace.path() + "/csv";
  mistique::bench::CheckOk(
      mistique::WriteZillowCsvs(mistique::GenerateZillow(config), csv_dir),
      "csvs");
  mistique::bench::RunTrad(workspace.path(), csv_dir);

  mistique::CifarConfig cifar;
  cifar.num_examples = mistique::bench::EnvInt("MISTIQUE_DNN_EXAMPLES", 256);
  const mistique::CifarData data = mistique::GenerateCifar(cifar);
  auto input = std::make_shared<mistique::Tensor>(data.images);
  mistique::bench::RunDnn(workspace.path(), input);
  std::printf("\n");
  return 0;
}
