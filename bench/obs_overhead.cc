// obs_overhead — cost of the observability layer on the fetch hot path.
//
// Measures per-call latency of engine fetches (forced read, warm buffer
// pool — the hottest path, where every instrumented site fires: fetch
// counters, lock-wait spans, dedup-resolve/decode accumulators, pool-hit
// counters) with the obs runtime switch ON vs OFF. The OFF baseline still
// pays one relaxed load + branch per site; building with
// -DMISTIQUE_OBS_DISABLED=ON compiles even that out. Blocks of the two
// modes are interleaved so clock drift and cache warmup hit both equally.
//
// Acceptance target (ISSUE/EXPERIMENTS.md): enabled p50 within 2% of
// disabled p50.
//
// Knobs: MQ_EXAMPLES (default 256), MQ_ITERS (paired rounds, default 40),
// MQ_BLOCK (fetches per timed pass, default 45).
//
// MQ_FLIGHTREC=1 measures the flight-recorder path instead: the ON pass
// adds the per-request sampling draw plus span capture + Record() for
// the sampled slice (MQ_SAMPLE_RATE, default 0.01) on top of the obs
// runtime; the OFF pass is the plain fetch. This is the CI obs-smoke
// gate: always-on retrospection must stay under the same 2% budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace mistique;         // NOLINT: bench brevity.
using namespace mistique::bench;  // NOLINT

namespace {

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

}  // namespace

int main() {
  const int num_examples = EnvInt("MQ_EXAMPLES", 256);
  const size_t iters = static_cast<size_t>(EnvInt("MQ_ITERS", 40));
  const size_t block = static_cast<size_t>(EnvInt("MQ_BLOCK", 45));
  const bool flightrec = EnvInt("MQ_FLIGHTREC", 0) != 0;
  const double sample_rate = EnvInt("MQ_SAMPLE_RATE_PCT", 1) / 100.0;

  BenchDir dir("obs_overhead");
  CifarConfig data_config;
  data_config.num_examples = num_examples;
  CifarData data = GenerateCifar(data_config);
  auto input = std::make_shared<Tensor>(data.images);

  DnnScaleConfig scale;
  scale.vgg_scale = 0.05;
  scale.cnn_scale = 0.2;
  auto net = BuildCifarCnn(scale);

  MistiqueOptions options;
  options.store.directory = dir.path() + "/store";
  options.strategy = StorageStrategy::kDedup;
  options.row_block_size = 64;
  options.query_cache_entries = 0;  // No engine cache: hit the read path.
  Mistique mq;
  CheckOk(mq.Open(options), "open");
  const ModelId id =
      CheckOk(mq.LogNetwork(net.get(), input, "cifar", "cnn"), "log");
  CheckOk(mq.Flush(), "flush");

  const ModelInfo* model = CheckOk(mq.metadata().GetModel(id), "model");
  std::vector<FetchRequest> requests;
  for (const IntermediateInfo& interm : model->intermediates) {
    FetchRequest req;
    req.project = "cifar";
    req.model = "cnn";
    req.intermediate = interm.name;
    req.force_read = true;
    req.n_ex = static_cast<uint64_t>(num_examples) / 2;
    requests.push_back(std::move(req));
  }

  // Warm the buffer pool so both modes measure the in-memory path.
  for (const FetchRequest& req : requests) {
    CheckOk(mq.Fetch(req), "warm fetch");
  }

  std::printf("# obs_overhead: %zu paired rounds, %zu fetches/pass, "
              "%zu layers, %d examples (obs compiled %s%s)\n",
              iters, block, requests.size(), num_examples,
              obs::kCompiledIn ? "in" : "OUT",
              flightrec ? ", flight recorder mode" : "");

  // Flight-recorder mode: the ON pass pays the per-request sampling draw
  // and, for the sampled slice, a span-traced fetch recorded into a
  // bounded ring — exactly what a serving node does for plain traffic.
  obs::FlightRecorderOptions recorder_options;
  recorder_options.sample_rate = sample_rate;
  obs::FlightRecorder recorder(recorder_options);

  // One sample = one timed pass over every layer (identical work in both
  // modes). Each round times an ON pass and an OFF pass back to back, in
  // alternating order, and records the paired ratio — the pairing cancels
  // frequency-scaling and cache drift that per-fetch timings cannot.
  const auto run_pass = [&](bool enabled) {
    if (!flightrec) obs::SetEnabled(enabled);
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < block; ++i) {
      const FetchRequest& req = requests[i % requests.size()];
      if (flightrec && enabled && recorder.Sample()) {
        obs::QueryTrace trace(obs::NewTraceId(), "bench fetch");
        trace.sampled = true;
        {
          obs::TraceScope scope(&trace);
          CheckOk(mq.Fetch(req), "fetch");
        }
        trace.total_sec = trace.Elapsed();
        recorder.Record(std::move(trace));
      } else {
        CheckOk(mq.Fetch(req), "fetch");
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  run_pass(true);  // warm both code paths once more before measuring
  run_pass(false);

  std::vector<double> on_samples, off_samples, ratios;
  for (size_t round = 0; round < iters; ++round) {
    double on_sec = 0, off_sec = 0;
    if (round % 2 == 0) {
      on_sec = run_pass(true);
      off_sec = run_pass(false);
    } else {
      off_sec = run_pass(false);
      on_sec = run_pass(true);
    }
    on_samples.push_back(on_sec);
    off_samples.push_back(off_sec);
    if (off_sec > 0) ratios.push_back(on_sec / off_sec);
  }
  obs::SetEnabled(true);

  const double per_fetch = 1e6 / static_cast<double>(block);
  const double on_p50 = Quantile(on_samples, 0.50);
  const double off_p50 = Quantile(off_samples, 0.50);
  const double overhead_pct = (Quantile(ratios, 0.50) - 1.0) * 100.0;

  std::printf("%12s %14s\n", "mode", "p50_us/fetch");
  std::printf("%12s %14.2f\n", "obs_on", on_p50 * per_fetch);
  std::printf("%12s %14.2f\n", "obs_off", off_p50 * per_fetch);
  std::printf("p50 overhead (median paired ratio): %+.2f%% (target < 2%%)\n",
              overhead_pct);
  return 0;
}
