// Reproduces Table 3: KNN accuracy under quantization — the fraction of
// the true k nearest neighbours (computed on full-precision activations)
// recovered when the same query runs on 8BIT_QT and POOL_QT(2) stores.
// Paper shape (k=50, layers 11/16/19): 8BIT_QT ~0.94-1.0, pool(2)
// ~0.74-1.0, both improving with layer depth.
//
// Scale knobs: MISTIQUE_DNN_EXAMPLES (default 192; paper 50000),
// MISTIQUE_KNN_K (default 20; paper 50).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

namespace mistique {
namespace bench {
namespace {

namespace dq = diagnostics;

std::unique_ptr<Mistique> MakeStore(const std::string& dir,
                                    std::shared_ptr<const Tensor> input,
                                    QuantScheme scheme, int sigma) {
  MistiqueOptions opts;
  opts.store.directory = dir;
  opts.strategy = StorageStrategy::kDedup;
  opts.dnn_scheme = scheme;
  opts.pool_sigma = sigma;
  opts.row_block_size = 128;
  auto mq = std::make_unique<Mistique>();
  CheckOk(mq->Open(opts), "open");
  auto net = BuildVgg16Cifar({});
  CheckOk(mq->LogNetwork(net.get(), input, "cifar", "vgg").status(), "log");
  CheckOk(mq->Flush(), "flush");
  return mq;
}

std::vector<size_t> KnnOn(Mistique* mq, const char* layer, size_t query_row,
                          size_t k) {
  FetchRequest req;
  req.project = "cifar";
  req.model = "vgg";
  req.intermediate = layer;
  req.force_read = true;
  FetchResult result = CheckOk(mq->Fetch(req), "fetch");
  return dq::Knn(result.columns, query_row, k);
}

void Run() {
  BenchDir workspace("table3");
  CifarConfig config;
  config.num_examples = EnvInt("MISTIQUE_DNN_EXAMPLES", 192);
  const CifarData data = GenerateCifar(config);
  auto input = std::make_shared<Tensor>(data.images);
  const size_t k = static_cast<size_t>(EnvInt("MISTIQUE_KNN_K", 20));

  PrintHeader(
      "Table 3: KNN overlap with full-precision neighbours (paper, k=50: "
      "8BIT_QT {0.94,0.96,1.0}, pool(2) {0.74,0.84,1.0} at layers "
      "{11,16,19})");

  auto full = MakeStore(workspace.path() + "/full", input,
                        QuantScheme::kNone, 1);
  auto kbit = MakeStore(workspace.path() + "/kbit", input,
                        QuantScheme::kKBit, 1);
  auto pool = MakeStore(workspace.path() + "/pool", input,
                        QuantScheme::kLp32, 2);

  const char* layers[] = {"layer11", "layer16", "layer19"};
  const size_t queries[] = {5, 17, 51, 101};

  std::printf("k=%zu, averaged over %zu query images\n\n", k,
              std::size(queries));
  std::printf("%-8s %12s %12s %12s\n", "layer", "full", "8BIT_QT",
              "POOL_QT(2)");
  for (const char* layer : layers) {
    double kbit_overlap = 0, pool_overlap = 0;
    for (size_t query : queries) {
      const auto truth = KnnOn(full.get(), layer, query, k);
      kbit_overlap +=
          dq::NeighbourOverlap(truth, KnnOn(kbit.get(), layer, query, k));
      pool_overlap +=
          dq::NeighbourOverlap(truth, KnnOn(pool.get(), layer, query, k));
    }
    const double n = static_cast<double>(std::size(queries));
    std::printf("%-8s %12.2f %12.2f %12.2f\n", layer, 1.0,
                kbit_overlap / n, pool_overlap / n);
  }
  std::printf(
      "\nexpected shape: both columns below 1.0 at shallow layers and\n"
      "approaching 1.0 by layer19, with 8BIT_QT >= POOL_QT(2).\n");
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::Run();
  std::printf("\n");
  return 0;
}
