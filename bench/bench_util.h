#ifndef MISTIQUE_BENCH_BENCH_UTIL_H_
#define MISTIQUE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/status.h"

namespace mistique {
namespace bench {

/// Integer knob from the environment (experiment scales), with a default.
inline int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : def;
}

inline double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : def;
}

/// Workspace directory under /tmp, wiped at construction.
class BenchDir {
 public:
  explicit BenchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("mistique_bench_" + tag))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Aborts the bench with a message on a non-OK status (benches are
/// experiment drivers; failing loudly is correct).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueOrDie();
}

/// Pretty-prints byte counts ("1.23 GB").
inline std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace mistique

#endif  // MISTIQUE_BENCH_BENCH_UTIL_H_
