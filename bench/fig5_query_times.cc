// Reproduces Fig. 5: end-to-end diagnostic query times, RERUN vs MISTIQUE
// (read), with the cost model's pick starred.
//  (a) TRAD: eight queries from Table 5 against Zillow pipelines.
//  (b-d) DNN: the same query set against CIFAR10_VGG16 at Layer21 (last),
//        Layer11 (middle), Layer1 (first) — where the paper shows the
//        trade-off flipping.
//
// Scale knobs: MISTIQUE_ZILLOW_PROPS (default 2000), MISTIQUE_DNN_EXAMPLES
// (default 256; paper 50000).

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

namespace mistique {
namespace bench {
namespace {

namespace dq = diagnostics;

struct QueryTiming {
  double rerun_sec = 0;
  double read_sec = 0;
  bool model_picks_read = false;
};

/// Runs `body` twice — forcing re-run, then forcing read — and records the
/// wall time of each (fetch + compute, Eq. 1).
QueryTiming TimeBothWays(
    const std::function<void(Mistique*, bool)>& body, Mistique* mq,
    const std::function<bool()>& picks_read) {
  QueryTiming t;
  Stopwatch watch;
  body(mq, /*force_read=*/false);
  t.rerun_sec = watch.ElapsedSeconds();
  watch.Reset();
  body(mq, /*force_read=*/true);
  t.read_sec = watch.ElapsedSeconds();
  t.model_picks_read = picks_read();
  return t;
}

void PrintRow(const char* name, const char* category, const QueryTiming& t) {
  std::printf("%-18s %-5s %10.4fs%s %10.4fs%s %9.1fx\n", name, category,
              t.rerun_sec, t.model_picks_read ? " " : "*", t.read_sec,
              t.model_picks_read ? "*" : " ",
              t.rerun_sec / std::max(t.read_sec, 1e-9));
}

FetchResult Fetch(Mistique* mq, FetchRequest req, bool force_read) {
  req.force_read = force_read;
  return CheckOk(mq->Fetch(req), "fetch");
}

// ------------------------------------------------------------------ TRAD

void RunTrad(const std::string& workspace) {
  PrintHeader(
      "Fig 5a: TRAD end-to-end query times (paper: read wins always, "
      "2.5x-390x)");

  ZillowConfig config;
  config.num_properties =
      static_cast<size_t>(EnvInt("MISTIQUE_ZILLOW_PROPS", 2000));
  config.num_train = config.num_properties * 3 / 4;
  config.num_test = config.num_properties / 4;
  const std::string csv_dir = workspace + "/zillow_csv";
  CheckOk(WriteZillowCsvs(GenerateZillow(config), csv_dir), "csvs");

  MistiqueOptions opts;
  opts.store.directory = workspace + "/trad_store";
  opts.strategy = StorageStrategy::kDedup;
  opts.calibrate_on_open = true;
  Mistique mq;
  CheckOk(mq.Open(opts), "open");

  auto p1v0 = CheckOk(BuildZillowPipeline(1, 0, csv_dir), "P1_v0");
  auto p1v1 = CheckOk(BuildZillowPipeline(1, 1, csv_dir), "P1_v1");
  CheckOk(mq.LogPipeline(p1v0.get(), "zillow").status(), "log P1_v0");
  CheckOk(mq.LogPipeline(p1v1.get(), "zillow").status(), "log P1_v1");
  CheckOk(mq.Flush(), "flush");

  const auto make_req = [](const std::string& interm) {
    FetchRequest req;
    req.project = "zillow";
    req.model = "P1_v0";
    req.intermediate = interm;
    return req;
  };
  // Cost-model pick for the request shape the query makes most.
  const auto picker = [&mq, &make_req](const std::string& interm,
                                       std::vector<std::string> cols,
                                       uint64_t n_ex) {
    return [&mq, make_req, interm, cols, n_ex]() {
      FetchRequest req = make_req(interm);
      req.columns = cols;
      req.n_ex = n_ex;
      FetchResult r = CheckOk(mq.Fetch(req), "probe");
      return r.predicted_read_sec <= r.predicted_rerun_sec;
    };
  };

  std::printf("%-18s %-5s %12s %12s %9s   (* = cost model pick)\n", "query",
              "cat", "RERUN", "MISTIQUE", "speedup");

  // POINTQ (FCFR): one feature of one home.
  PrintRow("POINTQ", "FCFR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchRequest req = make_req("x_all");
                 req.columns = {"lotsizesquarefeet"};
                 req.row_ids = {135};
                 Fetch(m, req, read);
               },
               &mq, picker("x_all", {"lotsizesquarefeet"}, 1)));

  // TOPK (FCFR): error on the 10 most recently built homes.
  PrintRow("TOPK", "FCFR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchRequest req = make_req("x_all");
                 req.columns = {"yearbuilt"};
                 FetchResult years = Fetch(m, req, read);
                 const auto top = dq::TopK(years.columns[0], 10);
                 FetchRequest err = make_req("train_merged");
                 err.columns = {"logerror"};
                 for (const auto& [row, v] : top) err.row_ids.push_back(row);
                 Fetch(m, err, read);
               },
               &mq, picker("x_all", {"yearbuilt"}, 0)));

  // COL_DIFF (FCMR): P1_v0 vs P1_v1 test predictions grouped by land-use
  // type (pred_test rows align 1:1 with test_merged rows).
  PrintRow("COL_DIFF", "FCMR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchRequest req = make_req("pred_test");
                 FetchResult a = Fetch(m, req, read);
                 req.model = "P1_v1";
                 FetchResult b = Fetch(m, req, read);
                 FetchRequest grp = make_req("test_merged");
                 grp.columns = {"propertylandusetypeid"};
                 FetchResult g = Fetch(m, grp, read);
                 std::vector<double> diff(a.columns[0].size());
                 for (size_t i = 0; i < diff.size(); ++i) {
                   diff[i] = a.columns[0][i] - b.columns[0][i];
                 }
                 dq::GroupedMeans(diff, g.columns[0]);
               },
               &mq, picker("pred_test", {}, 0)));

  // COL_DIST (FCMR): error-rate histogram over all homes.
  PrintRow("COL_DIST", "FCMR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchRequest req = make_req("train_merged");
                 req.columns = {"logerror"};
                 FetchResult errs = Fetch(m, req, read);
                 dq::ComputeHistogram(errs.columns[0], 40);
               },
               &mq, picker("train_merged", {"logerror"}, 0)));

  // KNN (MCFR): 10 homes most similar to Home-50.
  PrintRow("KNN", "MCFR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchResult all = Fetch(m, make_req("x_all"), read);
                 dq::Knn(all.columns, 50, 10);
               },
               &mq, picker("x_all", {}, 0)));

  // ROW_DIFF (MCFR): features of Home-50 vs Home-55.
  PrintRow("ROW_DIFF", "MCFR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchRequest req = make_req("x_all");
                 req.row_ids = {50, 55};
                 FetchResult rows = Fetch(m, req, read);
                 dq::RowDiff(rows.columns, 0, 1);
               },
               &mq, picker("x_all", {}, 2)));

  // VIS (MCMR): average features of old vs new homes.
  PrintRow("VIS", "MCMR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchResult all = Fetch(m, make_req("x_all"), read);
                 FetchRequest yreq = make_req("x_all");
                 yreq.columns = {"yearbuilt"};
                 FetchResult years = Fetch(m, yreq, read);
                 std::vector<int> old_home(years.columns[0].size());
                 for (size_t i = 0; i < old_home.size(); ++i) {
                   old_home[i] = years.columns[0][i] < 1960 ? 1 : 0;
                 }
                 dq::MeanPerColumnByClass(all.columns, old_home, 2);
               },
               &mq, picker("x_all", {}, 0)));

  // SVCCA (MCMR): correlation structure between features and residuals.
  PrintRow("SVCCA", "MCMR",
           TimeBothWays(
               [&](Mistique* m, bool read) {
                 FetchResult feats = Fetch(m, make_req("x_train"), read);
                 FetchResult pred =
                     Fetch(m, make_req("train_pred_lgbm"), read);
                 (void)dq::SvccaSimilarity(feats.columns, pred.columns);
               },
               &mq, picker("x_train", {}, 0)));
}

// ------------------------------------------------------------------- DNN

void RunDnnLayer(Mistique* mq, const IntermediateInfo& interm,
                 const std::string& layer, const std::string& logits_layer) {
  const auto make_req = [&layer](const std::string& l) {
    FetchRequest req;
    req.project = "cifar";
    req.model = "vgg";
    req.intermediate = l.empty() ? layer : l;
    return req;
  };
  Mistique& m = *mq;
  const auto picker = [&m, make_req](std::vector<std::string> cols,
                                     uint64_t n_ex) {
    return [&m, make_req, cols, n_ex]() {
      FetchRequest req = make_req("");
      req.columns = cols;
      req.n_ex = n_ex;
      FetchResult r = CheckOk(m.Fetch(req), "probe");
      return r.predicted_read_sec <= r.predicted_rerun_sec;
    };
  };

  // Column names for one channel (POINTQ's "activation map of neuron-k").
  const int channel = std::min(3, interm.channels - 1);
  std::vector<std::string> map_cols;
  if (interm.channels > 0) {
    auto range =
        CheckOk(Mistique::ChannelColumns(interm, channel), "channel cols");
    for (size_t c = range.first; c < range.second; ++c) {
      map_cols.push_back(interm.columns[c].name);
    }
  } else {
    map_cols.push_back(interm.columns[0].name);
  }
  const std::string one_col =
      interm.columns[std::min<size_t>(35, interm.columns.size() - 1)].name;

  PrintRow(("POINTQ/" + layer).c_str(), "FCFR",
           TimeBothWays(
               [&](Mistique* mqp, bool read) {
                 FetchRequest req = make_req("");
                 req.columns = map_cols;
                 req.row_ids = {45};
                 Fetch(mqp, req, read);
               },
               mq, picker(map_cols, 1)));

  PrintRow(("TOPK/" + layer).c_str(), "FCFR",
           TimeBothWays(
               [&](Mistique* mqp, bool read) {
                 FetchRequest req = make_req("");
                 req.columns = {one_col};
                 FetchResult col = Fetch(mqp, req, read);
                 dq::TopK(col.columns[0], 10);
               },
               mq, picker({one_col}, 0)));

  PrintRow(("COL_DIST/" + layer).c_str(), "FCMR",
           TimeBothWays(
               [&](Mistique* mqp, bool read) {
                 FetchRequest req = make_req("");
                 req.columns = {one_col};
                 FetchResult col = Fetch(mqp, req, read);
                 dq::ComputeHistogram(col.columns[0], 40);
               },
               mq, picker({one_col}, 0)));

  PrintRow(("KNN/" + layer).c_str(), "MCFR",
           TimeBothWays(
               [&](Mistique* mqp, bool read) {
                 FetchResult all = Fetch(mqp, make_req(""), read);
                 dq::Knn(all.columns, 51, 10);
               },
               mq, picker({}, 0)));

  PrintRow(("VIS/" + layer).c_str(), "MCMR",
           TimeBothWays(
               [&](Mistique* mqp, bool read) {
                 FetchResult all = Fetch(mqp, make_req(""), read);
                 dq::MeanPerColumn(all.columns);
               },
               mq, picker({}, 0)));

  PrintRow(("SVCCA/" + layer).c_str(), "MCMR",
           TimeBothWays(
               [&](Mistique* mqp, bool read) {
                 FetchResult reps = Fetch(mqp, make_req(""), read);
                 FetchResult logits = Fetch(mqp, make_req(logits_layer), read);
                 (void)dq::SvccaSimilarity(reps.columns, logits.columns);
               },
               mq, picker({}, 0)));
}

void RunDnn(const std::string& workspace) {
  const int n_examples = EnvInt("MISTIQUE_DNN_EXAMPLES", 256);
  PrintHeader(
      "Fig 5b-d: DNN query times on CIFAR10_VGG16 (paper: Layer21 read "
      "60-210x faster; Layer11 2-42x; Layer1 re-run up to 2.5x faster)");
  std::printf("examples=%d (paper: 50000), store=POOL_QT(2)+LP_QT(32)\n\n",
              n_examples);

  CifarConfig data_config;
  data_config.num_examples = n_examples;
  const CifarData data = GenerateCifar(data_config);
  auto input = std::make_shared<Tensor>(data.images);

  MistiqueOptions opts;
  opts.store.directory = workspace + "/dnn_store";
  opts.strategy = StorageStrategy::kDedup;
  opts.dnn_scheme = QuantScheme::kLp32;
  opts.pool_sigma = 2;
  opts.row_block_size = 128;
  opts.calibrate_on_open = true;
  Mistique mq;
  CheckOk(mq.Open(opts), "open dnn");

  auto net = BuildVgg16Cifar({});
  CheckOk(mq.LogNetwork(net.get(), input, "cifar", "vgg").status(),
          "log vgg");
  CheckOk(mq.Flush(), "flush");

  const ModelId id = CheckOk(mq.metadata().FindModel("cifar", "vgg"), "find");
  std::printf("%-18s %-5s %12s %12s %9s   (* = cost model pick)\n", "query",
              "cat", "RERUN", "MISTIQUE", "speedup");
  for (const char* layer : {"layer21", "layer11", "layer1"}) {
    const IntermediateInfo* interm = CheckOk(
        std::as_const(mq.metadata()).FindIntermediate(id, layer), "interm");
    RunDnnLayer(&mq, *interm, layer, "layer20");
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::BenchDir workspace("fig5");
  mistique::bench::RunTrad(workspace.path());
  mistique::bench::RunDnn(workspace.path());
  return 0;
}
