// cluster_throughput — aggregate fetch QPS of a sharded cluster vs a
// single store behind the same router (docs/CLUSTER.md).
//
// Builds a synthetic multi-model store whose working set exceeds one
// store's buffer-pool budget but fits comfortably in three, then
// measures the identical client workload twice: once against a 1-shard
// cluster (one store behind a Router) and once against a 3-shard
// cluster (the same data split by the consistent-hash ShardMap across
// three stores). Router overhead is paid in both setups, so the delta
// is what sharding actually buys: aggregate buffer-pool capacity — the
// 1-shard store cycles partitions through its pool and pays a
// decompress on nearly every fetch, while each shard's slice of the
// ring fits in its own pool and serves from memory. (On multi-core
// hosts shard CPU parallelism adds on top; the cache-capacity win is
// core-count independent.) Before timing, every model is fetched
// through the 3-shard router and compared bit-for-bit against the
// unsplit store — a speedup over wrong answers is no speedup.
//
// Knobs: MQ_CLIENTS (default 8), MQ_REQUESTS (100 per client),
// MQ_SHARD_WORKERS (2 per shard), MQ_MODELS (12), MQ_ROWS (32768 per
// model), MQ_POOL_MB (8 per store). `--json` emits one machine-readable
// line for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/rebalance.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "core/mistique.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

using namespace mistique;         // NOLINT: bench brevity.
using namespace mistique::bench;  // NOLINT

namespace {

std::vector<ImportIntermediate> SyntheticModel(int index, uint64_t rows) {
  ImportIntermediate interm;
  interm.name = "pred";
  interm.stage_index = 1;
  interm.num_rows = rows;
  interm.column_names = {"pred", "score", "residual", "weight"};
  interm.columns.resize(interm.column_names.size());
  for (uint64_t r = 0; r < rows; ++r) {
    interm.columns[0].push_back(index * 1000.0 + 0.25 * r);
    interm.columns[1].push_back(std::sin(index + 0.01 * r));
    interm.columns[2].push_back(std::cos(0.02 * r) - index);
    interm.columns[3].push_back(1.0 / (1.0 + index + r % 17));
  }
  return {interm};
}

/// One cluster under test: N shard stores + servers behind a Router.
struct Cluster {
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::unique_ptr<cluster::Router> router;
  std::unique_ptr<net::Server> front;

  /// Serves `stores` (one per shard, ids 0..n-1) behind a fresh router.
  void Start(const std::vector<Mistique*>& stores, size_t shard_workers) {
    std::vector<cluster::ShardSpec> live;
    for (size_t s = 0; s < stores.size(); ++s) {
      QueryServiceOptions service_options;
      service_options.num_workers = shard_workers;
      service_options.max_queue = 0;  // Throughput, not admission policy.
      services.push_back(
          std::make_unique<QueryService>(stores[s], service_options));
      servers.push_back(std::make_unique<net::Server>(services.back().get()));
      CheckOk(servers.back()->Start(), "shard server start");
      cluster::ShardSpec spec;
      spec.shard_id = static_cast<uint32_t>(s);
      spec.port = servers.back()->port();
      live.push_back(spec);
    }
    cluster::RouterOptions router_options;
    router_options.num_workers = 16;
    // Enough pooled connections that concurrent forwards never churn
    // through connect/handshake cycles mid-measurement.
    router_options.max_idle_clients_per_shard = 64;
    router = std::make_unique<cluster::Router>(cluster::ShardMap(1, live),
                                               router_options);
    CheckOk(router->Start(), "router start");
    front = std::make_unique<net::Server>(router.get());
    CheckOk(front->Start(), "front start");
  }

  void Stop() {
    if (front) front->Stop();
    if (router) router->Stop();
    for (auto& server : servers) server->Stop();
  }
};

struct LoadResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t errors = 0;
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

LoadResult RunLoad(uint16_t port, size_t clients, size_t requests,
                   const std::function<Status(net::Client*, size_t)>& op) {
  net::ClientOptions options;
  options.port = port;
  std::mutex merge_mutex;
  std::vector<double> latencies;
  std::atomic<uint64_t> errors{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(options);
      std::vector<double> mine;
      mine.reserve(requests);
      for (size_t q = 0; q < requests; ++q) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!op(&client, c * requests + q).ok()) {
          errors++;
          continue;
        }
        mine.push_back(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  for (auto& t : threads) t.join();

  LoadResult out;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.qps = static_cast<double>(clients * requests) / elapsed;
  out.p50_ms = Percentile(&latencies, 0.50) * 1e3;
  out.p99_ms = Percentile(&latencies, 0.99) * 1e3;
  out.errors = errors.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const size_t clients = static_cast<size_t>(EnvInt("MQ_CLIENTS", 8));
  const size_t requests = static_cast<size_t>(EnvInt("MQ_REQUESTS", 100));
  const size_t shard_workers =
      static_cast<size_t>(EnvInt("MQ_SHARD_WORKERS", 2));
  const int num_models = EnvInt("MQ_MODELS", 12);
  const uint64_t rows = static_cast<uint64_t>(EnvInt("MQ_ROWS", 32768));
  const size_t pool_mb = static_cast<size_t>(EnvInt("MQ_POOL_MB", 8));

  BenchDir dir("cluster_throughput");
  MistiqueOptions options;
  options.store.directory = dir.path() + "/single";
  options.row_block_size = 256;
  // The crux: every store — the unsplit one and each shard — gets the
  // same per-node buffer-pool budget, sized so the full working set
  // (models * rows * 4 cols * 8B) overflows one pool but a third of it
  // fits one pool. Partitions kept small so eviction is fine-grained.
  options.store.memory_budget_bytes = pool_mb << 20;
  options.store.partition_target_bytes = 1ull << 20;
  Mistique single;
  CheckOk(single.Open(options), "open single");
  std::vector<FetchRequest> fetches;
  for (int i = 0; i < num_models; ++i) {
    const std::string model = "m" + std::to_string(i);
    CheckOk(single.ImportModel("bench", model, SyntheticModel(i, rows)),
            "import");
    FetchRequest req;
    req.project = "bench";
    req.model = model;
    req.intermediate = "pred";
    fetches.push_back(std::move(req));
  }

  // Split the same data three ways along the ring the router will use.
  std::vector<std::unique_ptr<Mistique>> shard_stores;
  std::vector<Mistique*> shard_ptrs;
  std::vector<cluster::ShardSpec> split_specs;
  for (uint32_t s = 0; s < 3; ++s) {
    MistiqueOptions shard_options = options;
    shard_options.store.directory =
        dir.path() + "/shard" + std::to_string(s);
    shard_stores.push_back(std::make_unique<Mistique>());
    CheckOk(shard_stores.back()->Open(shard_options), "open shard");
    shard_ptrs.push_back(shard_stores.back().get());
    cluster::ShardSpec spec;
    spec.shard_id = s;
    split_specs.push_back(spec);
  }
  const std::vector<size_t> assigned =
      CheckOk(cluster::SplitStore(&single, shard_ptrs,
                                  cluster::ShardMap(1, split_specs)),
              "split");
  // Seal everything: fetches must come through the compressed store +
  // buffer pool, not open in-memory partitions, or the pool budget
  // (the thing sharding multiplies) never binds.
  CheckOk(single.Flush(), "flush single");
  for (Mistique* shard : shard_ptrs) CheckOk(shard->Flush(), "flush shard");

  if (!json) {
    std::printf("# cluster_throughput: %zu clients x %zu requests, "
                "%zu workers/shard, %d models x %llu rows "
                "(split %zu/%zu/%zu)\n",
                clients, requests, shard_workers, num_models,
                static_cast<unsigned long long>(rows), assigned[0],
                assigned[1], assigned[2]);
  }

  // --- Correctness gate: 3-shard answers must be byte-identical ---
  Cluster three;
  three.Start(shard_ptrs, shard_workers);
  {
    net::ClientOptions copts;
    copts.port = three.front->port();
    net::Client client(copts);
    for (size_t i = 0; i < fetches.size(); ++i) {
      const FetchResult remote =
          CheckOk(client.Fetch(fetches[i]), "routed fetch");
      const FetchResult ref = CheckOk(single.Fetch(fetches[i]), "oracle");
      if (remote.columns != ref.columns ||
          remote.column_names != ref.column_names ||
          remote.row_ids != ref.row_ids) {
        std::fprintf(stderr, "FATAL: routed fetch of %s diverged from the "
                     "unsplit store\n", fetches[i].model.c_str());
        std::abort();
      }
    }
  }

  // Point lookups scattered across the whole intermediate: the shard
  // touches RowBlocks spanning every partition of the model (so a cold
  // buffer pool pays its decompressions) while the response stays small
  // (the routing tax both clusters pay equally). Shifting ids per
  // request defeats the shard's session result cache.
  const uint64_t kLookups = 16;
  const auto load_op = [&](net::Client* c, size_t i) {
    FetchRequest req = fetches[i % fetches.size()];
    req.row_ids.reserve(kLookups);
    for (uint64_t k = 0; k < kLookups; ++k) {
      req.row_ids.push_back((k * (rows / kLookups) + i * 131) % rows);
    }
    std::sort(req.row_ids.begin(), req.row_ids.end());
    return c->Fetch(req).status();
  };

  // --- 3-shard load (router already warm from the gate) ---
  const LoadResult sharded =
      RunLoad(three.front->port(), clients, requests, load_op);
  three.Stop();

  // --- 1-shard baseline: same router stack over the unsplit store ---
  Cluster one;
  one.Start({&single}, shard_workers);
  RunLoad(one.front->port(), 2, 30, load_op);  // warm-up
  const LoadResult baseline =
      RunLoad(one.front->port(), clients, requests, load_op);
  one.Stop();

  if (sharded.errors != 0 || baseline.errors != 0) {
    std::fprintf(stderr, "FATAL: %llu sharded / %llu baseline errors\n",
                 static_cast<unsigned long long>(sharded.errors),
                 static_cast<unsigned long long>(baseline.errors));
    std::abort();
  }

  const double speedup =
      baseline.qps > 0 ? sharded.qps / baseline.qps : 0;
  if (json) {
    std::printf(
        "{\"clients\": %zu, \"requests_per_client\": %zu, "
        "\"shard_workers\": %zu, \"models\": %d, \"rows\": %llu, "
        "\"one_shard_qps\": %.0f, \"one_shard_p50_ms\": %.3f, "
        "\"one_shard_p99_ms\": %.3f, \"three_shard_qps\": %.0f, "
        "\"three_shard_p50_ms\": %.3f, \"three_shard_p99_ms\": %.3f, "
        "\"speedup\": %.2f, \"byte_identical\": true}\n",
        clients, requests, shard_workers, num_models,
        static_cast<unsigned long long>(rows), baseline.qps, baseline.p50_ms,
        baseline.p99_ms, sharded.qps, sharded.p50_ms, sharded.p99_ms,
        speedup);
    return 0;
  }

  std::printf("%10s %10s %10s %10s\n", "cluster", "qps", "p50_ms", "p99_ms");
  std::printf("%10s %10.0f %10.3f %10.3f\n", "1-shard", baseline.qps,
              baseline.p50_ms, baseline.p99_ms);
  std::printf("%10s %10.0f %10.3f %10.3f\n", "3-shard", sharded.qps,
              sharded.p50_ms, sharded.p99_ms);
  std::printf("speedup: %.2fx aggregate fetch QPS "
              "(answers byte-identical to the unsplit store)\n", speedup);
  return 0;
}
