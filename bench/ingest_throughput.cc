// MVCC ingest-vs-read interference bench (docs/MVCC.md, ISSUE 7 gates):
//
//  1. Idle baseline: p50/p99 latency of a snapshot read (force_read fetch
//     of a published checkpoint's logits layer) with no writer activity.
//  2. Concurrent ingest: the same reader loop while a writer thread logs
//     CIFAR CNN checkpoints back to back (LogNetwork -> stage, seal,
//     publish). Gate: concurrent reader p99 <= 2x idle p99 — readers pin
//     snapshots and never block on the ingest writer.
//  3. Publish visibility: for every checkpoint, the wall time from
//     LogNetwork returning (epoch bumped) to the first successful fetch of
//     the new model from a reader thread. Gate: < 100 ms.
//
// Knobs: INGEST_ROWS (default 128), INGEST_CHECKPOINTS (default 5),
// INGEST_IDLE_ITERS (default 400). Exits non-zero if a gate fails.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

namespace mistique {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1));
  return values[idx];
}

FetchRequest LogitsRequest(const std::string& model) {
  FetchRequest req;
  req.project = "cifar";
  req.model = model;
  req.intermediate = "layer8";  // fc2 logits: 10 columns
  req.force_read = true;        // pure snapshot-read path, no executor
  return req;
}

double TimedFetch(Mistique* mq, const FetchRequest& req) {
  const auto start = Clock::now();
  CheckOk(mq->Fetch(req).status(), "fetch");
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int Run() {
  const int rows = EnvInt("INGEST_ROWS", 128);
  const int checkpoints = EnvInt("INGEST_CHECKPOINTS", 5);
  const int idle_iters = EnvInt("INGEST_IDLE_ITERS", 400);

  BenchDir dir("ingest_throughput");
  Mistique mq;
  MistiqueOptions opts;
  opts.store.directory = dir.path() + "/store";
  opts.strategy = StorageStrategy::kDedup;
  opts.row_block_size = 128;
  CheckOk(mq.Open(opts), "open");

  CifarConfig cifar;
  cifar.num_examples = rows;
  const CifarData data = GenerateCifar(cifar);
  auto input = std::make_shared<Tensor>(data.images);
  auto net = BuildCifarCnn({});

  PrintHeader("MVCC ingest throughput: reader latency under live ingest");
  std::printf("rows=%d checkpoints=%d idle_iters=%d\n\n", rows, checkpoints,
              idle_iters);

  CheckOk(mq.LogNetwork(net.get(), input, "cifar", "base").status(),
          "log baseline");
  const FetchRequest base_req = LogitsRequest("base");

  // --- Phase 1: idle baseline -------------------------------------------
  std::vector<double> idle;
  idle.reserve(static_cast<size_t>(idle_iters));
  for (int i = 0; i < idle_iters; ++i) idle.push_back(TimedFetch(&mq, base_req));
  const double idle_p50 = Percentile(idle, 0.50);
  const double idle_p99 = Percentile(idle, 0.99);
  std::printf("idle reader:        p50 %8.3f ms   p99 %8.3f ms  (%d fetches)\n",
              idle_p50 * 1e3, idle_p99 * 1e3, idle_iters);

  // --- Phase 2: reader loop vs live LogNetwork ingest -------------------
  std::atomic<bool> ingest_done{false};
  std::atomic<int> published_idx{-1};
  std::vector<Clock::time_point> publish_time(
      static_cast<size_t>(checkpoints));

  std::vector<double> live;
  std::thread reader([&] {
    while (!ingest_done.load(std::memory_order_acquire)) {
      live.push_back(TimedFetch(&mq, base_req));
    }
  });

  // Publish-visibility watcher: polls for each checkpoint as soon as the
  // writer announces it, timing epoch-bump -> first successful read.
  std::vector<double> visibility(static_cast<size_t>(checkpoints));
  std::thread watcher([&] {
    for (int k = 0; k < checkpoints; ++k) {
      while (published_idx.load(std::memory_order_acquire) < k) {
        std::this_thread::yield();
        if (ingest_done.load(std::memory_order_acquire) &&
            published_idx.load(std::memory_order_acquire) < k) {
          return;
        }
      }
      const FetchRequest req = LogitsRequest("ckpt" + std::to_string(k));
      while (!mq.Fetch(req).ok()) std::this_thread::yield();
      visibility[static_cast<size_t>(k)] = std::chrono::duration<double>(
          Clock::now() - publish_time[static_cast<size_t>(k)]).count();
    }
  });

  const auto ingest_start = Clock::now();
  for (int k = 0; k < checkpoints; ++k) {
    net->PerturbTrainable(900 + static_cast<uint64_t>(k), 0.05);
    CheckOk(mq.LogNetwork(net.get(), input, "cifar",
                          "ckpt" + std::to_string(k))
                .status(),
            "log checkpoint");
    publish_time[static_cast<size_t>(k)] = Clock::now();
    published_idx.store(k, std::memory_order_release);
  }
  const double ingest_sec =
      std::chrono::duration<double>(Clock::now() - ingest_start).count();
  ingest_done.store(true, std::memory_order_release);
  reader.join();
  watcher.join();

  const double live_p50 = Percentile(live, 0.50);
  const double live_p99 = Percentile(live, 0.99);
  std::printf("concurrent reader:  p50 %8.3f ms   p99 %8.3f ms  (%zu fetches "
              "during %.1fs of ingest, %.1f ckpt/min)\n",
              live_p50 * 1e3, live_p99 * 1e3, live.size(), ingest_sec,
              checkpoints * 60.0 / ingest_sec);

  double vis_max = 0;
  for (int k = 0; k < checkpoints; ++k) {
    vis_max = std::max(vis_max, visibility[static_cast<size_t>(k)]);
  }
  std::printf("publish visibility: max %6.3f ms across %d checkpoints\n",
              vis_max * 1e3, checkpoints);
  std::printf("mvcc: epoch %llu, %llu snapshots reclaimed, %llu retired, "
              "%llu pinned\n\n",
              static_cast<unsigned long long>(mq.CurrentEpoch()),
              static_cast<unsigned long long>(
                  mq.snapshots().snapshots_reclaimed()),
              static_cast<unsigned long long>(
                  mq.snapshots().retired_snapshots()),
              static_cast<unsigned long long>(mq.snapshots().pinned_readers()));

  // --- Gates ------------------------------------------------------------
  int rc = 0;
  const double ratio = idle_p99 > 0 ? live_p99 / idle_p99 : 0;
  std::printf("gate: concurrent p99 / idle p99 = %.2fx (limit 2.00x) -> %s\n",
              ratio, ratio <= 2.0 ? "PASS" : "FAIL");
  if (ratio > 2.0) rc = 1;
  std::printf("gate: publish visibility max = %.1f ms (limit 100 ms) -> %s\n",
              vis_max * 1e3, vis_max < 0.100 ? "PASS" : "FAIL");
  if (vis_max >= 0.100) rc = 1;
  return rc;
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() { return mistique::bench::Run(); }
