// service_throughput — QPS of the concurrent QueryService over a logged
// DNN as the worker count grows.
//
// K sessions (client threads) hammer a W-worker QueryService with fetches
// over the materialized layers of a small CNN, warm buffer pool, session
// caches off — so every query exercises the engine's shared-lock read
// path. Reported per worker count: wall time, QPS, speedup vs W=1, and
// tail latency. With the pool warm the read path is CPU-bound (decode +
// column assembly), so QPS should scale with workers up to the core count.
//
// Knobs: MQ_EXAMPLES (default 256), MQ_SESSIONS (8), MQ_QUERIES (48 per
// session), MQ_MAX_WORKERS (8).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/mistique.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "service/query_service.h"

using namespace mistique;         // NOLINT: bench brevity.
using namespace mistique::bench;  // NOLINT

namespace {

struct RunResult {
  double elapsed_sec = 0;
  double qps = 0;
  ServiceStats stats;
};

RunResult RunLoad(Mistique* mq, const std::vector<FetchRequest>& requests,
                  size_t workers, size_t sessions, size_t queries) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_queue = 0;             // Unbounded: measure throughput, not
                                     // admission policy.
  options.session_cache_entries = 0; // Every query hits the engine.
  QueryService service(mq, options);

  std::atomic<uint64_t> errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      const SessionId session = service.OpenSession();
      for (size_t q = 0; q < queries; ++q) {
        const FetchRequest& req = requests[(s * queries + q) % requests.size()];
        if (!service.Fetch(session, req).ok()) errors++;
      }
    });
  }
  for (auto& t : clients) t.join();

  RunResult run;
  run.elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.qps = static_cast<double>(sessions * queries) / run.elapsed_sec;
  run.stats = service.Stats();
  if (errors.load() != 0) {
    std::fprintf(stderr, "FATAL: %llu queries failed\n",
                 static_cast<unsigned long long>(errors.load()));
    std::abort();
  }
  return run;
}

}  // namespace

int main() {
  const int num_examples = EnvInt("MQ_EXAMPLES", 256);
  const size_t sessions = static_cast<size_t>(EnvInt("MQ_SESSIONS", 8));
  const size_t queries = static_cast<size_t>(EnvInt("MQ_QUERIES", 48));
  const size_t max_workers = static_cast<size_t>(EnvInt("MQ_MAX_WORKERS", 8));

  BenchDir dir("service_throughput");
  CifarConfig data_config;
  data_config.num_examples = num_examples;
  CifarData data = GenerateCifar(data_config);
  auto input = std::make_shared<Tensor>(data.images);

  DnnScaleConfig scale;
  scale.vgg_scale = 0.05;
  scale.cnn_scale = 0.2;
  auto net = BuildCifarCnn(scale);

  MistiqueOptions options;
  options.store.directory = dir.path() + "/store";
  options.strategy = StorageStrategy::kDedup;  // Materialize every layer.
  options.row_block_size = 64;
  Mistique mq;
  CheckOk(mq.Open(options), "open");
  const ModelId id =
      CheckOk(mq.LogNetwork(net.get(), input, "cifar", "cnn"), "log");
  CheckOk(mq.Flush(), "flush");

  const ModelInfo* model = CheckOk(mq.metadata().GetModel(id), "model");
  std::vector<FetchRequest> requests;
  for (const IntermediateInfo& interm : model->intermediates) {
    FetchRequest req;
    req.project = "cifar";
    req.model = "cnn";
    req.intermediate = interm.name;
    req.force_read = true;  // Stay on the shared-lock read path.
    req.n_ex = static_cast<uint64_t>(num_examples) / 2;
    requests.push_back(std::move(req));
  }

  std::printf("# service_throughput: %zu sessions x %zu queries over %zu "
              "layers, %d examples (hw threads: %u)\n",
              sessions, queries, requests.size(), num_examples,
              std::thread::hardware_concurrency());

  // Warm the buffer pool so runs measure the in-memory read path.
  RunLoad(&mq, requests, /*workers=*/2, sessions, queries);

  std::printf("%8s %10s %10s %10s %12s %12s\n", "workers", "elapsed_s",
              "qps", "speedup", "p50_ms", "p95_ms");
  double base_qps = 0;
  for (size_t workers = 1; workers <= max_workers; workers *= 2) {
    const RunResult run = RunLoad(&mq, requests, workers, sessions, queries);
    if (workers == 1) base_qps = run.qps;
    std::printf("%8zu %10.3f %10.0f %9.2fx %12.2f %12.2f\n", workers,
                run.elapsed_sec, run.qps, run.qps / base_qps,
                run.stats.p50_latency_sec * 1e3,
                run.stats.p95_latency_sec * 1e3);
  }
  return 0;
}
