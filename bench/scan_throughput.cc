// Compressed-domain scan throughput: packed kernels vs decode fallback.
//
// Builds a store with one quantized column per (scheme, kbits) case, then
// times the same POINTQ predicate twice through the SAME engine API —
// once with enable_packed_scan (the src/scan/ kernels evaluate the
// predicate on the stored words) and once with the decode fallback
// (DecodeAsDouble + scalar filter). Row sets must be identical; the
// 8-bit KBIT case is the headline number ci/scan_smoke.sh gates on.
//
// Knobs (env):
//   SCAN_ROWS         rows per column           (default 2097152)
//   SCAN_ITERS        timed repetitions, best-of (default 5)
//   SCAN_MIN_SPEEDUP  fail unless the 8-bit KBIT POINTQ speedup meets
//                     this (default 0 = report only; CI passes 2.0)
//
// Both paths run against a warm buffer pool, so the ratio is kernel
// compute, not I/O — the packed path additionally reads 8x fewer bytes
// cold, which bench/fig5_query_times.cc already covers.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mistique.h"
#include "quantize/quantizer.h"
#include "scan/scan_kernels.h"

namespace mistique {
namespace bench {
namespace {

struct Case {
  QuantScheme scheme;
  int kbits;
  const char* label;
};

double TimeScans(Mistique* mq, const ScanRequest& req, int iters,
                 std::vector<uint64_t>* row_ids) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    ScanResult r = CheckOk(mq->Scan(req), "Scan");
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (sec < best) best = sec;
    *row_ids = std::move(r.row_ids);
  }
  return best;
}

int Run() {
  const uint64_t rows =
      static_cast<uint64_t>(EnvInt("SCAN_ROWS", 1 << 21));
  const int iters = EnvInt("SCAN_ITERS", 5);
  const double min_speedup = EnvDouble("SCAN_MIN_SPEEDUP", 0.0);

  PrintHeader("Compressed-domain scan: packed kernels vs decode fallback");
  std::printf("rows=%llu iters=%d kernel_tier=%s gate=%.1fx\n\n",
              static_cast<unsigned long long>(rows), iters,
              scan::KernelTier(), min_speedup);

  const Case cases[] = {
      {QuantScheme::kKBit, 8, "KBIT_QT k=8"},
      {QuantScheme::kKBit, 4, "KBIT_QT k=4"},
      {QuantScheme::kKBit, 2, "KBIT_QT k=2"},
      {QuantScheme::kThreshold, 8, "THRESHOLD_QT"},
  };

  std::printf("%-14s %12s %12s %10s %12s\n", "case", "decode", "packed",
              "speedup", "match_rows");
  double gated_speedup = -1.0;
  double gated_packed_sec = 0.0;
  for (const Case& c : cases) {
    BenchDir dir(std::string("scan_tput_") + std::to_string(c.kbits) +
                 (c.scheme == QuantScheme::kThreshold ? "t" : "k"));
    MistiqueOptions opts;
    opts.store.directory = dir.path() + "/store";
    opts.strategy = StorageStrategy::kDedup;
    opts.row_block_size = 4096;

    // One dense column, quantized at import (opt-in path).
    {
      Mistique writer;
      CheckOk(writer.Open(opts), "Open(writer)");
      ImportIntermediate interm;
      interm.name = "act";
      interm.stage_index = 1;
      interm.num_rows = rows;
      interm.column_names = {"v"};
      interm.columns.resize(1);
      interm.columns[0].reserve(rows);
      for (uint64_t r = 0; r < rows; ++r) {
        interm.columns[0].push_back(
            std::sin(0.000917 * static_cast<double>(r)) +
            0.2 * std::sin(0.0413 * static_cast<double>(r)));
      }
      interm.scheme = c.scheme;
      interm.kbits = c.kbits;
      CheckOk(writer.ImportModel("bench", "m", {interm}).status(),
              "ImportModel");
      CheckOk(writer.Flush(), "Flush");
    }

    ScanRequest req;
    req.project = "bench";
    req.model = "m";
    req.intermediate = "act";
    req.predicate_column = "v";
    // Mid-selectivity band (~35% of a +/-1.2 waveform) so the predicate
    // does real work without the result vector dominating either path.
    req.lo = -0.35;
    req.hi = 0.45;

    std::vector<uint64_t> decode_rows;
    std::vector<uint64_t> packed_rows;
    double decode_sec;
    double packed_sec;
    {
      MistiqueOptions baseline = opts;
      baseline.enable_packed_scan = false;
      Mistique mq;
      CheckOk(mq.Open(baseline), "Open(decode)");
      TimeScans(&mq, req, 1, &decode_rows);  // warm the buffer pool
      decode_sec = TimeScans(&mq, req, iters, &decode_rows);
    }
    {
      Mistique mq;
      CheckOk(mq.Open(opts), "Open(packed)");
      TimeScans(&mq, req, 1, &packed_rows);
      packed_sec = TimeScans(&mq, req, iters, &packed_rows);
    }

    // The whole point: the packed path is an optimization, not an
    // approximation. Row sets must match exactly.
    if (packed_rows != decode_rows) {
      std::fprintf(stderr,
                   "FATAL: %s packed scan diverged from decode path "
                   "(%zu vs %zu rows)\n",
                   c.label, packed_rows.size(), decode_rows.size());
      return 1;
    }

    const double speedup = decode_sec / packed_sec;
    std::printf("%-14s %9.2f ms %9.2f ms %9.2fx %12zu\n", c.label,
                decode_sec * 1e3, packed_sec * 1e3, speedup,
                packed_rows.size());
    if (c.scheme == QuantScheme::kKBit && c.kbits == 8) {
      gated_speedup = speedup;
      gated_packed_sec = packed_sec;
    }
  }

  std::printf("\npacked scan throughput (8-bit): %.0f Mvalues/s\n",
              static_cast<double>(rows) / gated_packed_sec / 1e6);
  if (min_speedup > 0.0 && gated_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: 8-bit KBIT POINTQ speedup %.2fx below the %.1fx "
                 "gate\n",
                 gated_speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() { return mistique::bench::Run(); }
