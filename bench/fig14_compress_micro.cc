// Reproduces Fig. 14 (appendix): column-compression micro-benchmark.
// A matrix of float32 columns is generated with varying column similarity
// (0 = all columns independent, 0.5 = half of each column's values shared
// with a base column, 1 = all columns identical) and stored two ways:
//   co-located : similar columns placed in the same partition (MISTIQUE's
//                dedup placement), compressed together;
//   scattered  : columns round-robined across partitions, destroying
//                locality.
// Paper shape: storing similar values together compresses dramatically
// better, and the gap grows with similarity.
//
// Knobs: MISTIQUE_MICRO_ROWS (default 20000; paper 100000),
//        MISTIQUE_MICRO_COLS (default 100).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "storage/data_store.h"

namespace mistique {
namespace bench {
namespace {

std::vector<std::vector<double>> MakeColumns(size_t rows, size_t cols,
                                             double similarity) {
  Rng rng(42);
  std::vector<double> base(rows);
  for (double& v : base) v = rng.Gaussian();
  std::vector<std::vector<double>> out(cols, std::vector<double>(rows));
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      out[c][r] = rng.Bernoulli(similarity) ? base[r] : rng.Gaussian();
    }
  }
  return out;
}

uint64_t StoreBytes(const std::vector<std::vector<double>>& columns,
                    const std::string& dir, bool colocate) {
  DataStoreOptions opts;
  opts.directory = dir;
  opts.partition_target_bytes = 1ull << 30;  // Seal manually.
  DataStore store;
  CheckOk(store.Open(opts), "open");

  if (colocate) {
    // All similar columns into one partition, compressed as one unit.
    const PartitionId pid = store.CreatePartition();
    for (const auto& col : columns) {
      CheckOk(store.AddChunk(pid, ColumnChunk::FromDoubles(
                                      col, DType::kFloat32))
                  .status(),
              "add");
    }
  } else {
    // Scatter across 16 partitions round-robin.
    std::vector<PartitionId> pids;
    for (int i = 0; i < 16; ++i) pids.push_back(store.CreatePartition());
    for (size_t c = 0; c < columns.size(); ++c) {
      CheckOk(store.AddChunk(pids[c % pids.size()],
                             ColumnChunk::FromDoubles(columns[c],
                                                      DType::kFloat32))
                  .status(),
              "add");
    }
  }
  CheckOk(store.Flush(), "flush");
  return store.stored_bytes();
}

void Run() {
  BenchDir workspace("fig14");
  const size_t rows =
      static_cast<size_t>(EnvInt("MISTIQUE_MICRO_ROWS", 20000));
  const size_t cols =
      static_cast<size_t>(EnvInt("MISTIQUE_MICRO_COLS", 100));

  PrintHeader(
      "Fig 14: column-compression micro-benchmark (paper: co-locating "
      "similar columns compresses far better; gap grows with similarity)");
  const double raw_bytes = static_cast<double>(rows * cols * 4);
  std::printf("matrix: %zu x %zu float32 = %s raw\n\n", rows, cols,
              HumanBytes(raw_bytes).c_str());

  std::printf("%-11s %14s %14s %10s\n", "similarity", "co-located",
              "scattered", "gap");
  int run = 0;
  for (double similarity : {0.0, 0.5, 1.0}) {
    const auto columns = MakeColumns(rows, cols, similarity);
    const uint64_t together =
        StoreBytes(columns, workspace.path() + "/t" + std::to_string(run),
                   /*colocate=*/true);
    const uint64_t scattered =
        StoreBytes(columns, workspace.path() + "/s" + std::to_string(run),
                   /*colocate=*/false);
    run++;
    std::printf("%-11.1f %14s %14s %9.2fx\n", similarity,
                HumanBytes(static_cast<double>(together)).c_str(),
                HumanBytes(static_cast<double>(scattered)).c_str(),
                static_cast<double>(scattered) /
                    static_cast<double>(together));
  }
  std::printf(
      "\n(scattered partitions hold ~6 columns each, so identical columns\n"
      "still compress within a partition at similarity 1.0 — the paper's\n"
      "gzip-per-file baseline corresponds to the 0.0 row's gap of ~1x)\n");
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::Run();
  std::printf("\n");
  return 0;
}
