// Reproduces Table 2: mean CCA coefficient between the network logits and
// layer representations, comparing full-precision intermediates against
// 8BIT_QT and POOL_QT(2) stores. Paper shape: 8BIT_QT tracks full
// precision almost exactly; pool(2) introduces a discrepancy that shrinks
// with layer depth.
//
// Scale knob: MISTIQUE_DNN_EXAMPLES (default 192; paper 50000).

#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.h"
#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

namespace mistique {
namespace bench {
namespace {

namespace dq = diagnostics;

struct Store {
  const char* name;
  QuantScheme scheme;
  int sigma;
  std::unique_ptr<Mistique> mq;
};

FetchResult FetchLayer(Mistique* mq, const std::string& layer) {
  FetchRequest req;
  req.project = "cifar";
  req.model = "vgg";
  req.intermediate = layer;
  req.force_read = true;
  return CheckOk(mq->Fetch(req), "fetch layer");
}

void Run() {
  BenchDir workspace("table2");
  CifarConfig config;
  config.num_examples = EnvInt("MISTIQUE_DNN_EXAMPLES", 192);
  const CifarData data = GenerateCifar(config);
  auto input = std::make_shared<Tensor>(data.images);

  PrintHeader(
      "Table 2: SVCCA mean CCA coefficient vs logits (paper: 8BIT_QT ~= "
      "full precision; pool(2) discrepancy shrinks with depth)");

  Store stores[3] = {
      {"full", QuantScheme::kNone, 1, nullptr},
      {"8BIT_QT", QuantScheme::kKBit, 1, nullptr},
      {"POOL_QT(2)", QuantScheme::kLp32, 2, nullptr},
  };
  for (Store& store : stores) {
    MistiqueOptions opts;
    opts.store.directory = workspace.path() + "/" + store.name;
    opts.strategy = StorageStrategy::kDedup;
    opts.dnn_scheme = store.scheme;
    opts.pool_sigma = store.sigma;
    opts.row_block_size = 128;
    store.mq = std::make_unique<Mistique>();
    CheckOk(store.mq->Open(opts), "open");
    auto net = BuildVgg16Cifar({});
    CheckOk(store.mq->LogNetwork(net.get(), input, "cifar", "vgg").status(),
            "log");
    CheckOk(store.mq->Flush(), "flush");
  }

  const char* layers[] = {"layer7", "layer11", "layer16", "layer19"};
  std::printf("%-8s %12s %12s %12s\n", "layer", "full", "8BIT_QT",
              "POOL_QT(2)");
  for (const char* layer : layers) {
    std::printf("%-8s", layer);
    for (Store& store : stores) {
      // Alg. 1: SVCCA(layer representation, logits) on this store's data.
      FetchResult reps = FetchLayer(store.mq.get(), layer);
      FetchResult logits = FetchLayer(store.mq.get(), "layer20");
      const double cca = CheckOk(
          dq::SvccaSimilarity(reps.columns, logits.columns), "svcca");
      std::printf(" %12.4f", cca);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: 8BIT_QT column within ~0.01 of full; POOL column\n"
      "off at shallow layers, converging toward full at deep layers.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::Run();
  std::printf("\n");
  return 0;
}
