// Reproduces Fig. 10: adaptive materialization on a synthetic 25-query
// Zillow workload.
//  Left: storage footprint of ADAPTIVE vs DEDUP vs STORE_ALL.
//  Right: per-query latency evolution for three queries with the paper's
//  three behaviours — VIS and COL_DIFF drop sharply once their
//  intermediates materialize; COL_DIST stays flat (its γ never crosses).
//
// γ is set as sec/KB like the paper (0.5 s/KB there); the default here is
// tuned to the reduced scale so the crossing happens mid-workload.
// Knobs: MISTIQUE_ZILLOW_PROPS (default 2000), MISTIQUE_GAMMA_SEC_PER_KB.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

namespace mistique {
namespace bench {
namespace {

namespace dq = diagnostics;

struct Workload {
  // The three tracked queries hit different intermediates so their γ
  // trajectories differ.
  enum Kind { kVis, kColDiff, kColDist };
  Kind kind;
};

double RunQuery(Mistique* mq, Workload::Kind kind) {
  Stopwatch watch;
  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  switch (kind) {
    case Workload::kVis: {
      // VIS: average feature values over the (wide) training matrix.
      req.intermediate = "x_train";
      FetchResult all = CheckOk(mq->Fetch(req), "vis fetch");
      dq::MeanPerColumn(all.columns);
      break;
    }
    case Workload::kColDiff: {
      // COL_DIFF: predictions of two variants grouped by land-use.
      req.intermediate = "pred_valid";
      FetchResult a = CheckOk(mq->Fetch(req), "coldiff a");
      req.model = "P1_v1";
      FetchResult b = CheckOk(mq->Fetch(req), "coldiff b");
      std::vector<double> diff(a.columns[0].size());
      for (size_t i = 0; i < diff.size(); ++i) {
        diff[i] = a.columns[0][i] - b.columns[0][i];
      }
      dq::ComputeHistogram(diff, 20);
      break;
    }
    case Workload::kColDist: {
      // COL_DIST: distribution of a raw input column. The properties table
      // is the TRAD analog of a DNN's Layer1 — large but almost free to
      // recreate (one CSV parse) — so its γ never crosses the threshold.
      req.intermediate = "properties";
      req.columns = {"taxamount"};
      FetchResult errs = CheckOk(mq->Fetch(req), "coldist");
      dq::ComputeHistogram(errs.columns[0], 40);
      break;
    }
  }
  return watch.ElapsedSeconds();
}

void Run() {
  BenchDir workspace("fig10");
  ZillowConfig config;
  config.num_properties =
      static_cast<size_t>(EnvInt("MISTIQUE_ZILLOW_PROPS", 2000));
  config.num_train = config.num_properties * 3 / 4;
  config.num_test = config.num_properties / 4;
  const std::string csv_dir = workspace.path() + "/csv";
  CheckOk(WriteZillowCsvs(GenerateZillow(config), csv_dir), "csvs");

  PrintHeader(
      "Fig 10: adaptive materialization (paper: ADAPTIVE footprint tiny; "
      "VIS 20s->1.7s after 15 queries, COL_DIFF 75s->26s after 5, "
      "COL_DIST unchanged)");

  // Storage footprint comparison (left panel).
  uint64_t footprints[3] = {0, 0, 0};
  const StorageStrategy strategies[3] = {StorageStrategy::kStoreAll,
                                         StorageStrategy::kDedup,
                                         StorageStrategy::kAdaptive};
  const char* names[3] = {"STORE_ALL", "DEDUP", "ADAPTIVE"};

  // γ threshold: by default tuned to this machine as ~2.5x the γ one VIS
  // query contributes, so VIS materializes after ~3 queries, COL_DIFF
  // (tiny intermediate, expensive re-run) after its first, and COL_DIST
  // (cheap-to-recreate raw table) never — the paper's three behaviours.
  // Override in sec/KB via MISTIQUE_GAMMA_SEC_PER_KB (paper used 0.5).
  const double gamma_knob = EnvDouble("MISTIQUE_GAMMA_SEC_PER_KB", 0.0);
  double gamma_min = gamma_knob * 1e6;  // sec/KB -> sec/GB.

  std::unique_ptr<Mistique> adaptive;
  std::vector<std::unique_ptr<Pipeline>> keepalive;
  for (int s = 0; s < 3; ++s) {
    auto mq = std::make_unique<Mistique>();
    MistiqueOptions opts;
    opts.store.directory = workspace.path() + "/" + names[s];
    opts.strategy = strategies[s];
    opts.gamma_min = 1e18;  // Final value set after calibration below.
    opts.calibrate_on_open = true;
    CheckOk(mq->Open(opts), "open");
    for (int variant = 0; variant < 2; ++variant) {
      auto pipeline =
          CheckOk(BuildZillowPipeline(1, variant, csv_dir), "build");
      CheckOk(mq->LogPipeline(pipeline.get(), "zillow").status(), "log");
      keepalive.push_back(std::move(pipeline));
    }
    CheckOk(mq->Flush(), "flush");
    footprints[s] = mq->StorageFootprintBytes();
    if (strategies[s] == StorageStrategy::kAdaptive) {
      adaptive = std::move(mq);
    }
  }

  if (gamma_min <= 0) {
    // Auto-tune from the VIS target's calibrated metadata.
    const ModelId id =
        CheckOk(adaptive->metadata().FindModel("zillow", "P1_v0"), "find");
    const ModelInfo* model =
        CheckOk(std::as_const(adaptive->metadata()).GetModel(id), "model");
    const IntermediateInfo* x_train = CheckOk(
        std::as_const(adaptive->metadata()).FindIntermediate(id, "x_train"),
        "x_train");
    IntermediateInfo probe = *x_train;
    probe.n_query = 1;
    const uint64_t est_bytes =
        probe.num_rows * probe.columns.size() * sizeof(double);
    gamma_min =
        2.5 * adaptive->cost_model().Gamma(*model, probe, est_bytes);
  }
  adaptive->set_gamma_min(gamma_min);
  std::printf("storage after logging 2 pipelines (before queries):\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("  %-10s %12s\n", names[s],
                HumanBytes(static_cast<double>(footprints[s])).c_str());
  }

  // Query-latency evolution (right panel): 25 queries sampled from the
  // three kinds, round-robin with repetition like the paper's random mix.
  std::printf("\nquery latencies over the 25-query workload (gamma_min=%.3g "
              "s/GB):\n", gamma_min);
  std::printf("%-4s %-9s %10s %14s\n", "#", "query", "seconds",
              "store bytes");
  Rng rng(13);
  const Workload::Kind kinds[3] = {Workload::kVis, Workload::kColDiff,
                                   Workload::kColDist};
  const char* kind_names[3] = {"VIS", "COL_DIFF", "COL_DIST"};
  double first_sec[3] = {0, 0, 0};
  double last_sec[3] = {0, 0, 0};
  for (int q = 0; q < 25; ++q) {
    const int kind = static_cast<int>(rng.NextBelow(3));
    const double sec = RunQuery(adaptive.get(), kinds[kind]);
    if (first_sec[kind] == 0) first_sec[kind] = sec;
    last_sec[kind] = sec;
    std::printf("%-4d %-9s %9.4fs %14s\n", q + 1, kind_names[kind], sec,
                HumanBytes(static_cast<double>(
                               adaptive->StorageFootprintBytes()))
                    .c_str());
  }
  std::printf("\nfirst->last latency per query kind:\n");
  for (int kind = 0; kind < 3; ++kind) {
    std::printf("  %-9s %9.4fs -> %9.4fs (%.1fx)\n", kind_names[kind],
                first_sec[kind], last_sec[kind],
                first_sec[kind] / std::max(last_sec[kind], 1e-9));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mistique

int main() {
  mistique::bench::Run();
  std::printf("\n");
  return 0;
}
