// Micro-benchmarks (google-benchmark) for the hot storage-path primitives:
// compression codecs, MinHash signatures, float16 conversion, and k-bit
// quantization. These are the per-chunk costs behind the logging overhead
// measurements of Fig. 11.

#include <benchmark/benchmark.h>

#include "common/float16.h"
#include "common/random.h"
#include "compress/codec.h"
#include "dedup/minhash.h"
#include "quantize/quantizer.h"
#include "storage/column_chunk.h"

namespace mistique {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextBelow(256));
  return out;
}

std::vector<uint8_t> RepeatingBytes(size_t n, size_t period) {
  std::vector<uint8_t> unit = RandomBytes(period, 7);
  std::vector<uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    const size_t take = std::min(period, n - out.size());
    out.insert(out.end(), unit.begin(),
               unit.begin() + static_cast<ptrdiff_t>(take));
  }
  return out;
}

void BM_CodecCompress(benchmark::State& state, CodecType type,
                      bool repetitive) {
  const Codec* codec = GetCodec(type).ValueOrDie();
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint8_t> input =
      repetitive ? RepeatingBytes(n, 4096) : RandomBytes(n, 3);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Compress(input, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["ratio"] =
      static_cast<double>(n) / static_cast<double>(out.size());
}

void BM_CodecDecompress(benchmark::State& state, CodecType type) {
  const Codec* codec = GetCodec(type).ValueOrDie();
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint8_t> input = RepeatingBytes(n, 4096);
  std::vector<uint8_t> compressed, out;
  (void)codec->Compress(input, &compressed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decompress(compressed, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

BENCHMARK_CAPTURE(BM_CodecCompress, lzss_random, CodecType::kLzss, false)
    ->Arg(1 << 16)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecCompress, lzss_repetitive, CodecType::kLzss, true)
    ->Arg(1 << 16)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecCompress, rle_repetitive, CodecType::kRle, true)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecCompress, dict_random, CodecType::kDictionary,
                  false)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecDecompress, lzss, CodecType::kLzss)->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecDecompress, rle, CodecType::kRle)->Arg(1 << 20);

void BM_MinHash(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) v = rng.Gaussian();
  const ColumnChunk chunk = ColumnChunk::FromDoubles(values);
  MinHashOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMinHash(chunk, opts));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MinHash)->Arg(1024)->Arg(8192);

void BM_Float16RoundTrip(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> values(4096);
  for (float& v : values) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    uint32_t acc = 0;
    for (float v : values) acc += FloatToHalf(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Float16RoundTrip);

void BM_KBitQuantize(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> sample(16384), values(4096);
  for (double& v : sample) v = rng.Gaussian();
  for (double& v : values) v = rng.Gaussian();
  KBitQuantizer q(static_cast<int>(state.range(0)));
  (void)q.Fit(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Quantize(values));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_KBitQuantize)->Arg(8)->Arg(3);

void BM_PoolQuantize(benchmark::State& state) {
  Rng rng(8);
  std::vector<double> map(32 * 32);
  for (double& v : map) v = rng.Gaussian();
  PoolQuantizer pool(static_cast<int>(state.range(0)), PoolMode::kAvg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.PoolMap(map, 32, 32));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_PoolQuantize)->Arg(2)->Arg(32);

}  // namespace
}  // namespace mistique
