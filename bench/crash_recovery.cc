// Crash-recovery harness (pstress-style): repeatedly run a write-heavy
// child workload that is killed at an injected fault point, then reopen
// the store in the parent and prove recovery — the catalog loads, every
// surviving intermediate is byte-identical to a golden run or healed by
// re-run, and no atomic-write temp debris is left behind.
//
//   crash_recovery                        # fixed matrix + randomized runs
//   crash_recovery --iterations 80        # total runs (default 50)
//   crash_recovery --seed 7               # seed for the randomized tail
//   crash_recovery --overhead             # durability cost microbenches
//   crash_recovery --child <workdir>      # (internal) the victim workload
//
// The child is this same binary re-exec'd with MISTIQUE_FAULT_POINT /
// MISTIQUE_FAULT_MODE=kill / MISTIQUE_FAULT_NTH set, so it dies with
// _Exit(91) mid-protocol exactly where the label sits.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/mistique.h"
#include "durability/crc32c.h"
#include "durability/durable_file.h"
#include "durability/fault_injection.h"
#include "durability/wal.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

namespace mistique {
namespace {

namespace fs = std::filesystem;
using bench::CheckOk;
using bench::EnvInt;

MistiqueOptions StoreOptions(const std::string& workdir) {
  MistiqueOptions opts;
  opts.store.directory = workdir + "/store";
  opts.strategy = StorageStrategy::kDedup;
  opts.row_block_size = 128;
  return opts;
}

/// The deterministic victim workload. Touches every fault point more than
/// once: partition seals (LogPipeline), catalog snapshots + WAL rotations
/// (SaveCatalog ×3), non-durable WAL appends (query stats), and a durable
/// WAL append (DeleteModel).
int RunChild(const std::string& workdir) {
  Mistique mq;
  CheckOk(mq.Open(StoreOptions(workdir)), "child open");
  auto p0 = CheckOk(BuildZillowPipeline(1, 0, workdir), "build P1_v0");
  CheckOk(mq.LogPipeline(p0.get(), "zillow").status(), "log P1_v0");
  CheckOk(mq.SaveCatalog(), "save 1");
  CheckOk(mq.GetIntermediates({"zillow.P1_v0.pred_test.pred"}).status(),
          "fetch 1");
  auto p1 = CheckOk(BuildZillowPipeline(1, 1, workdir), "build P1_v1");
  CheckOk(mq.LogPipeline(p1.get(), "zillow").status(), "log P1_v1");
  CheckOk(mq.SaveCatalog(), "save 2");
  CheckOk(mq.DeleteModel("zillow", "P1_v1"), "delete P1_v1");
  CheckOk(mq.GetIntermediates({"zillow.P1_v0.pred_test.pred"}).status(),
          "fetch 2");
  CheckOk(mq.SaveCatalog(), "save 3");
  return 0;
}

/// Golden pred_test values from one clean run of the child workload.
std::vector<double> GoldenRun(const std::string& workdir) {
  fs::remove_all(workdir + "/store");
  if (RunChild(workdir) != 0) std::abort();
  Mistique mq;
  CheckOk(mq.Open(StoreOptions(workdir)), "golden reopen");
  FetchResult r = CheckOk(
      mq.GetIntermediates({"zillow.P1_v0.pred_test.pred"}), "golden fetch");
  fs::remove_all(workdir + "/store");
  return r.columns[0];
}

struct IterationSpec {
  std::string label;
  int nth = 1;
};

/// Re-execs this binary as the victim child with the fault armed.
/// Returns the child's exit code (91 = injected kill).
int SpawnChild(const char* self, const std::string& workdir,
               const IterationSpec& spec) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::abort();
  }
  if (pid == 0) {
    ::setenv("MISTIQUE_FAULT_POINT", spec.label.c_str(), 1);
    ::setenv("MISTIQUE_FAULT_MODE", "kill", 1);
    ::setenv("MISTIQUE_FAULT_NTH", std::to_string(spec.nth).c_str(), 1);
    ::execl(self, self, "--child", workdir.c_str(),
            static_cast<char*>(nullptr));
    std::perror("execl");
    std::_Exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    std::abort();
  }
  if (WIFSIGNALED(status)) {
    std::fprintf(stderr, "child died on signal %d\n", WTERMSIG(status));
    std::abort();
  }
  return WEXITSTATUS(status);
}

/// Post-crash verification. Dies (abort) on any violated invariant.
void VerifyRecovery(const std::string& workdir,
                    const std::vector<double>& golden,
                    const IterationSpec& spec) {
  const std::string store_dir = workdir + "/store";
  const auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "RECOVERY FAILURE [%s nth=%d]: %s\n",
                 spec.label.c_str(), spec.nth, why.c_str());
    std::abort();
  };

  Mistique mq;
  const Status open_status = mq.Open(StoreOptions(workdir));
  if (!open_status.ok()) fail("reopen: " + open_status.ToString());

  // Invariant 1: the atomic-write protocol leaks no temp files — the
  // reopen swept any the crash left, and none may survive it.
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    if (entry.path().filename().string().ends_with(kTempSuffix)) {
      fail("orphan temp file " + entry.path().string());
    }
  }

  // Invariant 2: every recovered intermediate is servable — byte-identical
  // off storage, or (if a crash tore its chunks away) healed by re-run
  // once the executor is attached.
  std::vector<std::unique_ptr<Pipeline>> attached;
  for (const std::string& name : {std::string("P1_v0"), std::string("P1_v1")}) {
    Result<ModelId> id = mq.metadata().FindModel("zillow", name);
    if (!id.ok()) continue;  // Crashed before this model was snapshotted.
    const int version = name == "P1_v0" ? 0 : 1;
    auto pipeline =
        CheckOk(BuildZillowPipeline(1, version, workdir), "rebuild pipeline");
    CheckOk(mq.AttachPipeline("zillow", name, pipeline.get()), "attach");
    attached.push_back(std::move(pipeline));

    const ModelInfo* model = CheckOk(mq.metadata().GetModel(*id), "get model");
    for (size_t i = 0; i < model->intermediates.size(); ++i) {
      const std::string interm = model->intermediates[i].name;
      FetchRequest req;
      req.project = "zillow";
      req.model = name;
      req.intermediate = interm;
      Result<FetchResult> r = mq.Fetch(req);
      if (!r.ok()) {
        fail("fetch " + name + "." + interm + ": " + r.status().ToString());
      }
      // A second, forced read must now succeed: either the data was intact
      // all along or the fetch above healed it back into storage.
      req.force_read = true;
      Result<FetchResult> read = mq.Fetch(req);
      if (!read.ok()) {
        fail("post-heal read " + name + "." + interm + ": " +
             read.status().ToString());
      }
      if (name == "P1_v0" && interm == "pred_test" &&
          read->columns[0] != golden) {
        fail("pred_test diverged from the golden run");
      }
    }
  }
}

int RunMatrix(const char* self, int iterations, uint64_t seed) {
  bench::BenchDir dir("crash_recovery");
  ZillowConfig config;
  config.num_properties = 400;
  config.num_train = 300;
  config.num_test = 100;
  CheckOk(WriteZillowCsvs(GenerateZillow(config), dir.path()), "zillow csvs");
  const std::vector<double> golden = GoldenRun(dir.path());

  // Fixed matrix first — every label at its first three occurrences —
  // then a seeded random tail up to `iterations`.
  std::vector<IterationSpec> specs;
  for (const std::string& label : FaultPointLabels()) {
    for (int nth = 1; nth <= 3; ++nth) specs.push_back({label, nth});
  }
  Rng rng(seed);
  while (specs.size() < static_cast<size_t>(iterations)) {
    const auto& labels = FaultPointLabels();
    specs.push_back(
        {labels[rng.NextBelow(labels.size())],
         static_cast<int>(rng.UniformInt(1, 6))});
  }

  int crashed = 0, completed = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const IterationSpec& spec = specs[i];
    fs::remove_all(dir.path() + "/store");
    const int code = SpawnChild(self, dir.path(), spec);
    if (code == FaultInjector::kKillExitCode) {
      crashed++;
    } else if (code == 0) {
      completed++;  // The nth occurrence never happened; still verify.
    } else {
      std::fprintf(stderr, "child exited %d at [%s nth=%d]\n", code,
                   spec.label.c_str(), spec.nth);
      return 1;
    }
    VerifyRecovery(dir.path(), golden, spec);
    std::printf("[%3zu/%zu] %-22s nth=%d  %s -> recovered\n", i + 1,
                specs.size(), spec.label.c_str(), spec.nth,
                code == 0 ? "ran to completion" : "killed mid-protocol");
  }
  std::printf(
      "\nAll %zu iterations recovered (%d injected crashes, %d clean runs); "
      "no orphan temps, all intermediates byte-identical or healed.\n",
      specs.size(), crashed, completed);
  return 0;
}

/// Durability-cost microbenches feeding EXPERIMENTS.md: raw CRC32C
/// bandwidth, envelope write/read overhead, WAL append rates, and
/// crash-recovery open time vs a clean open.
int RunOverhead() {
  bench::PrintHeader("Durability overhead");
  Stopwatch watch;

  // CRC32C bandwidth (slice-by-8, single core).
  const size_t crc_bytes = 256ull << 20;
  std::vector<uint8_t> buf(crc_bytes);
  Rng rng(42);
  for (size_t i = 0; i < buf.size(); i += 8) {
    const uint64_t v = rng.NextU64();
    std::memcpy(&buf[i], &v, 8);
  }
  watch.Reset();
  uint32_t crc = Crc32c(buf.data(), buf.size());
  const double crc_secs = watch.ElapsedSeconds();
  std::printf("crc32c:          %6.2f GB/s  (256 MB, crc=%08x)\n",
              static_cast<double>(crc_bytes) / 1e9 / crc_secs, crc);

  bench::BenchDir dir("durability_overhead");
  // Envelope write (fsync + rename + dir fsync) vs checksum-only share.
  const size_t part_bytes = 8ull << 20;
  std::vector<uint8_t> part(buf.begin(), buf.begin() + part_bytes);
  const int writes = 16;
  watch.Reset();
  for (int i = 0; i < writes; ++i) {
    CheckOk(WriteEnvelopeFileAtomic(
                dir.path() + "/p" + std::to_string(i) + ".mq", part,
                /*sync=*/true, "partition"),
            "envelope write");
  }
  const double write_secs = watch.ElapsedSeconds();
  watch.Reset();
  for (int i = 0; i < writes; ++i) {
    CheckOk(ReadEnvelopeFile(dir.path() + "/p" + std::to_string(i) + ".mq")
                .status(),
            "envelope read");
  }
  const double read_secs = watch.ElapsedSeconds();
  std::printf("envelope write:  %6.2f MB/s  (8 MB x %d, fsync+rename)\n",
              static_cast<double>(part_bytes) * writes / 1e6 / write_secs,
              writes);
  std::printf("envelope read:   %6.2f MB/s  (checksum verified)\n",
              static_cast<double>(part_bytes) * writes / 1e6 / read_secs);

  // WAL appends: durable (fsync each) vs buffered.
  WriteAheadLog wal;
  CheckOk(wal.Open(dir.path() + "/bench.wal", 1, 0, true), "wal open");
  const std::vector<uint8_t> payload(32, 0xab);
  const int appends = 2000;
  watch.Reset();
  for (int i = 0; i < appends; ++i) {
    CheckOk(wal.Append(1, payload, /*durable=*/false), "append");
  }
  const double buffered_secs = watch.ElapsedSeconds();
  const int durable_appends = 200;
  watch.Reset();
  for (int i = 0; i < durable_appends; ++i) {
    CheckOk(wal.Append(1, payload, /*durable=*/true), "append durable");
  }
  const double durable_secs = watch.ElapsedSeconds();
  std::printf("wal append:      %8.0f /s buffered, %6.0f /s durable\n",
              appends / buffered_secs, durable_appends / durable_secs);

  // Recovery time: clean open vs open after a crash that corrupted one
  // partition (quarantine + catalog demotion on the reopen path).
  ZillowConfig config;
  config.num_properties = 400;
  config.num_train = 300;
  config.num_test = 100;
  CheckOk(WriteZillowCsvs(GenerateZillow(config), dir.path()), "csvs");
  if (RunChild(dir.path()) != 0) std::abort();
  watch.Reset();
  {
    Mistique mq;
    CheckOk(mq.Open(StoreOptions(dir.path())), "clean open");
  }
  const double clean_open = watch.ElapsedSeconds();
  // Flip one payload byte in the first partition file.
  for (const auto& entry : fs::directory_iterator(dir.path() + "/store")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("part-", 0) == 0 && name.ends_with(".mq")) {
      std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                       std::ios::binary);
      f.seekp(static_cast<std::streamoff>(kEnvelopeHeaderSize + 7));
      char b = 0x7f;
      f.write(&b, 1);
      break;
    }
  }
  watch.Reset();
  uint64_t detected = 0;
  {
    Mistique mq;
    CheckOk(mq.Open(StoreOptions(dir.path())), "crash open");
    detected = mq.corruptions_detected();
  }
  const double crash_open = watch.ElapsedSeconds();
  std::printf(
      "open time:       %6.2f ms clean, %6.2f ms with %llu corrupt "
      "partition(s) quarantined\n",
      clean_open * 1e3, crash_open * 1e3,
      static_cast<unsigned long long>(detected));
  return 0;
}

int Main(int argc, char** argv) {
  int iterations = EnvInt("CRASH_ITERATIONS", 50);
  uint64_t seed = static_cast<uint64_t>(EnvInt("CRASH_SEED", 1234));
  bool overhead = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--child" && i + 1 < argc) {
      return RunChild(argv[i + 1]);
    } else if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--overhead") {
      overhead = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--iterations N] [--seed S] [--overhead] "
                   "[--child workdir]\n",
                   argv[0]);
      return 2;
    }
  }
  if (overhead) return RunOverhead();
  return RunMatrix(argv[0], iterations, seed);
}

}  // namespace
}  // namespace mistique

int main(int argc, char** argv) { return mistique::Main(argc, argv); }
