// SVCCA training-dynamics study — the second use-case Raghu et al. give
// for SVCCA and one of the paper's headline motivations: checkpoint the
// model during (simulated) training, log every checkpoint's activations,
// and measure per-layer convergence by comparing each epoch's
// representation against the final epoch's. Frozen layers converge
// trivially (identical, and de-duplicated in storage); trainable layers
// drift.
//
//   build/examples/svcca_training_dynamics

#include <cstdio>
#include <filesystem>

#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

using namespace mistique;  // NOLINT: example brevity.
namespace dq = diagnostics;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

FetchResult FetchLayer(Mistique* mq, const std::string& model,
                       const std::string& layer) {
  FetchRequest req;
  req.project = "cifar";
  req.model = model;
  req.intermediate = layer;
  return Check(mq->Fetch(req));
}

}  // namespace

int main() {
  const std::string workspace = "/tmp/mistique_svcca_dynamics";
  std::filesystem::remove_all(workspace);

  CifarConfig data_config;
  data_config.num_examples = 160;
  const CifarData data = GenerateCifar(data_config);
  auto input = std::make_shared<Tensor>(data.images);

  MistiqueOptions options;
  options.store.directory = workspace + "/store";
  options.strategy = StorageStrategy::kDedup;
  options.dnn_scheme = QuantScheme::kLp32;
  options.pool_sigma = 2;
  options.row_block_size = 128;
  Mistique mq;
  Check(mq.Open(options));

  // Simulate fine-tuning: the VGG trunk is frozen, the FC head moves a
  // little less each epoch (decaying steps = convergence).
  constexpr int kEpochs = 4;
  auto net = BuildVgg16Cifar({});
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    if (epoch > 0) {
      net->PerturbTrainable(500 + static_cast<uint64_t>(epoch),
                            0.05 / epoch);
    }
    Check(mq.LogNetwork(net.get(), input, "cifar",
                        "vgg_ep" + std::to_string(epoch))
              .status());
  }
  Check(mq.Flush());
  std::printf(
      "logged %d checkpoints x 21 layers over %d images; footprint %.1f MB\n"
      "(frozen trunk layers de-duplicated: %llu duplicate chunks skipped)\n\n",
      kEpochs, data_config.num_examples,
      mq.StorageFootprintBytes() / 1e6,
      static_cast<unsigned long long>(mq.dedup().duplicate_chunks()));

  // Per-layer convergence: SVCCA(epoch e, final epoch).
  const std::string final_model = "vgg_ep" + std::to_string(kEpochs - 1);
  const char* layers[] = {"layer11", "layer18", "layer19", "layer20"};
  std::printf("%-8s", "epoch");
  for (const char* layer : layers) std::printf(" %10s", layer);
  std::printf("   (SVCCA vs final checkpoint)\n");
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const std::string model = "vgg_ep" + std::to_string(epoch);
    std::printf("%-8d", epoch);
    for (const char* layer : layers) {
      FetchResult a = FetchLayer(&mq, model, layer);
      FetchResult b = FetchLayer(&mq, final_model, layer);
      const double cca =
          Check(dq::SvccaSimilarity(a.columns, b.columns));
      std::printf(" %10.4f", cca);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected: trunk layers (11, 18) pinned at 1.0 (frozen weights);\n"
      "FC layers (19, 20) drift early and approach 1.0 as the simulated\n"
      "training converges — exactly the study the paper says requires\n"
      "storing per-epoch intermediates (350GB at full scale).\n");
  return 0;
}
