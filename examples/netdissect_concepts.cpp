// NetDissect-style concept analysis (Alg. 2 of the paper's appendix):
// for each convolutional unit, threshold its activation maps at the 99.5th
// percentile and score intersection-over-union against pixel-level concept
// masks. The synthetic CIFAR generator plants a bright blob per class, so
// "blob" is a recoverable concept — some units should align with it far
// better than chance.
//
//   build/examples/netdissect_concepts

#include <cstdio>
#include <filesystem>

#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

using namespace mistique;  // NOLINT: example brevity.
namespace dq = diagnostics;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  const std::string workspace = "/tmp/mistique_netdissect";
  std::filesystem::remove_all(workspace);

  CifarConfig data_config;
  data_config.num_examples = 200;
  const CifarData data = GenerateCifar(data_config);
  auto input = std::make_shared<Tensor>(data.images);
  auto net = BuildCifarCnn({});

  // NetDissect needs full-resolution activation maps, so log this model
  // without pooling (THRESHOLD_QT would also work and is 64x smaller, but
  // then the threshold is baked in at logging time — see Sec. 4.1).
  MistiqueOptions options;
  options.store.directory = workspace + "/store";
  options.strategy = StorageStrategy::kDedup;
  options.dnn_scheme = QuantScheme::kLp32;
  options.pool_sigma = 1;
  options.row_block_size = 128;
  Mistique mq;
  Check(mq.Open(options));
  Check(mq.LogNetwork(net.get(), input, "cifar", "cnn").status());
  Check(mq.Flush());

  // Concept masks: "bright blob" pixels, downsampled to the layer's
  // spatial grid. conv4's maps are 16x16 on 32x32 inputs.
  const ModelId id = Check(mq.metadata().FindModel("cifar", "cnn"));
  const IntermediateInfo* layer = Check(
      std::as_const(mq.metadata()).FindIntermediate(id, "layer5"));
  const int gh = layer->height, gw = layer->width;
  std::printf("dissecting layer5 (%d units, %dx%d maps) against the "
              "'bright blob' concept\n\n",
              layer->channels, gh, gw);

  std::vector<std::vector<uint8_t>> masks(
      static_cast<size_t>(input->n),
      std::vector<uint8_t>(static_cast<size_t>(gh) * gw, 0));
  for (int img = 0; img < input->n; ++img) {
    for (int y = 0; y < gh; ++y) {
      for (int x = 0; x < gw; ++x) {
        // A grid cell is "concept" when its brightest source pixel is
        // bright across all channels (the planted blob is white-ish).
        float best = 0;
        for (int sy = y * 32 / gh; sy < (y + 1) * 32 / gh; ++sy) {
          for (int sx = x * 32 / gw; sx < (x + 1) * 32 / gw; ++sx) {
            float v = 1.0f;
            for (int c = 0; c < 3; ++c) {
              v = std::min(v, input->at(img, c, sy, sx));
            }
            best = std::max(best, v);
          }
        }
        if (best > 0.55f) {
          masks[static_cast<size_t>(img)][static_cast<size_t>(y) * gw + x] =
              1;
        }
      }
    }
  }

  // Score every unit; report the best-aligned ones.
  std::vector<std::pair<double, int>> scored;
  for (int unit = 0; unit < layer->channels; ++unit) {
    const auto range = Check(Mistique::ChannelColumns(*layer, unit));
    FetchRequest req;
    req.project = "cifar";
    req.model = "cnn";
    req.intermediate = "layer5";
    for (size_t c = range.first; c < range.second; ++c) {
      req.columns.push_back(layer->columns[c].name);
    }
    FetchResult maps = Check(mq.Fetch(req));
    const dq::NetDissectResult result =
        Check(dq::NetDissect(maps.columns, masks, /*alpha=*/0.02));
    scored.emplace_back(result.iou, unit);
  }
  std::sort(scored.rbegin(), scored.rend());

  std::printf("%-6s %8s\n", "unit", "IoU");
  for (size_t i = 0; i < 5 && i < scored.size(); ++i) {
    std::printf("%-6d %8.4f\n", scored[i].second, scored[i].first);
  }
  std::printf("...\n%-6d %8.4f (weakest unit)\n", scored.back().second,
              scored.back().first);
  std::printf("\nunits whose top-2%% activations align with the blob concept "
              "far above\nthe weakest unit indicate concept-selective "
              "filters, as in Netdissect.\n");
  return 0;
}
