// Quickstart: log a small ML pipeline into MISTIQUE, then answer
// diagnostic questions by fetching intermediates — letting the cost model
// decide whether to read the store or re-run the pipeline.
//
//   build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

using namespace mistique;  // NOLINT: example brevity.

namespace {

void Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).ValueOrDie();
}

void Check(const Status& status) {
  if (!status.ok()) Fail(status);
}

}  // namespace

int main() {
  const std::string workspace = "/tmp/mistique_quickstart";
  std::filesystem::remove_all(workspace);

  // 1. A dataset and a model pipeline (the Kaggle-Zestimate-style workload
  //    that ships with the library).
  ZillowConfig data_config;
  data_config.num_properties = 1500;
  data_config.num_train = 1100;
  data_config.num_test = 400;
  Check(WriteZillowCsvs(GenerateZillow(data_config), workspace + "/csv"));
  std::unique_ptr<Pipeline> pipeline =
      Check(BuildZillowPipeline(/*template_id=*/1, /*variant=*/0,
                                workspace + "/csv"));

  // 2. Open a MISTIQUE instance and log the pipeline: every stage output
  //    becomes a queryable intermediate.
  MistiqueOptions options;
  options.store.directory = workspace + "/store";
  options.strategy = StorageStrategy::kDedup;
  options.calibrate_on_open = true;
  Mistique mq;
  Check(mq.Open(options));
  Check(mq.LogPipeline(pipeline.get(), "zillow").status());
  Check(mq.Flush());
  std::printf("logged %zu intermediates, storage footprint %.1f KB\n",
              Check(std::as_const(mq.metadata())
                        .GetModel(Check(mq.metadata().FindModel(
                            "zillow", "P1_v0"))))
                  ->intermediates.size(),
              mq.StorageFootprintBytes() / 1e3);

  // 3. The paper's key-based API: fetch any column of any intermediate.
  FetchResult errors = Check(
      mq.GetIntermediates({"zillow.P1_v0.train_merged.logerror"}));
  std::printf("\nfetched %zu logerror values via %s (%.2f ms; model "
              "predicted read=%.2fms rerun=%.2fms)\n",
              errors.columns[0].size(),
              errors.used_read ? "READ" : "RERUN",
              errors.fetch_seconds * 1e3, errors.predicted_read_sec * 1e3,
              errors.predicted_rerun_sec * 1e3);

  // 4. Diagnosis: where does the model do worst? (The generator plants a
  //    systematic error on pre-1940 homes — find it.)
  FetchResult year = Check(
      mq.GetIntermediates({"zillow.P1_v0.train_merged.yearbuilt"}));
  std::vector<double> old_err, new_err;
  for (size_t i = 0; i < errors.columns[0].size(); ++i) {
    const double yb = year.columns[0][i];
    if (std::isnan(yb)) continue;
    (yb < 1940 ? old_err : new_err).push_back(errors.columns[0][i]);
  }
  const auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  std::printf("\nmean Zestimate log-error, homes built <1940: %+.4f (n=%zu)\n",
              mean(old_err), old_err.size());
  std::printf("mean Zestimate log-error, homes built >=1940: %+.4f (n=%zu)\n",
              mean(new_err), new_err.size());
  std::printf("=> the model under-serves old homes — the \"old Victorian "
              "homes\" failure mode from the paper's introduction.\n");

  // 5. A point query: the 5 most expensive homes and their predictions.
  FetchResult tax =
      Check(mq.GetIntermediates({"zillow.P1_v0.test_merged.taxvaluedollarcnt"}));
  const auto top = diagnostics::TopK(tax.columns[0], 5);
  FetchRequest req;
  req.project = "zillow";
  req.model = "P1_v0";
  req.intermediate = "pred_test";
  for (const auto& [row, value] : top) req.row_ids.push_back(row);
  FetchResult preds = Check(mq.Fetch(req));
  std::printf("\ntop-5 most expensive test homes (row: taxvalue -> predicted "
              "logerror):\n");
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("  row %5llu: $%.0f -> %+.4f\n",
                static_cast<unsigned long long>(top[i].first), top[i].second,
                preds.columns[0][i]);
  }

  // 6. Persist the catalog so the store outlives this process — explore it
  //    with `mistique_cli <store> ls` or serve it with
  //    `mistique_cli <store> service_session`.
  Check(mq.SaveCatalog());
  std::printf("\nstore persisted at %s/store\n", workspace.c_str());
  return 0;
}
