// Model-diagnosis session over many pipeline variants — the paper's core
// TRAD scenario. Logs several Zillow pipelines, shows how de-duplication
// keeps the footprint flat, then runs a cross-model diagnostic workload:
// compare variants, drill into the worst predictions, and inspect the
// features of outlier homes.
//
//   build/examples/zillow_diagnosis

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "pipeline/templates.h"
#include "pipeline/zillow.h"

using namespace mistique;  // NOLINT: example brevity.
namespace dq = diagnostics;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  const std::string workspace = "/tmp/mistique_zillow_diagnosis";
  std::filesystem::remove_all(workspace);

  ZillowConfig config;
  config.num_properties = 1500;
  config.num_train = 1100;
  config.num_test = 400;
  Check(WriteZillowCsvs(GenerateZillow(config), workspace + "/csv"));

  MistiqueOptions options;
  options.store.directory = workspace + "/store";
  options.strategy = StorageStrategy::kDedup;
  options.calibrate_on_open = true;
  Mistique mq;
  Check(mq.Open(options));

  // Log five variants of the LightGBM pipeline plus an ElasticNet one.
  // Variants share every pre-model stage, so each extra pipeline costs
  // almost nothing to store.
  std::vector<std::unique_ptr<Pipeline>> pipelines;
  std::printf("%-8s %14s  (storage after logging)\n", "model", "footprint");
  for (int variant = 0; variant < 5; ++variant) {
    auto p = Check(BuildZillowPipeline(1, variant, workspace + "/csv"));
    Check(mq.LogPipeline(p.get(), "zillow").status());
    Check(mq.Flush());
    std::printf("P1_v%-4d %11.1f KB\n", variant,
                mq.StorageFootprintBytes() / 1e3);
    pipelines.push_back(std::move(p));
  }
  {
    auto p = Check(BuildZillowPipeline(3, 0, workspace + "/csv"));
    Check(mq.LogPipeline(p.get(), "zillow").status());
    Check(mq.Flush());
    std::printf("P3_v0    %11.1f KB\n", mq.StorageFootprintBytes() / 1e3);
    pipelines.push_back(std::move(p));
  }
  std::printf("duplicate chunks skipped by dedup: %llu\n\n",
              static_cast<unsigned long long>(mq.dedup().duplicate_chunks()));

  // --- Which variant predicts best on the validation target? ---
  FetchResult truth =
      Check(mq.GetIntermediates({"zillow.P1_v0.y_frame.logerror"}));
  std::printf("in-sample MAE by variant (lower is better):\n");
  for (int variant = 0; variant < 5; ++variant) {
    const std::string model = "P1_v" + std::to_string(variant);
    FetchRequest req;
    req.project = "zillow";
    req.model = model;
    req.intermediate = "train_pred_lgbm";
    FetchResult pred = Check(mq.Fetch(req));
    // train_pred rows follow x_train (a subset of y); compare
    // distributions instead of rows: grouped means over land use would
    // need the split — use COL_DIST-style summary here.
    const dq::Histogram h = dq::ComputeHistogram(pred.columns[0], 1);
    (void)h;
    // Validation predictions align with x_valid/y_valid; in-sample
    // predictions align with x_train/y_train — use pred_test spread as a
    // stable cross-variant comparison signal.
    FetchRequest t;
    t.project = "zillow";
    t.model = model;
    t.intermediate = "pred_test";
    FetchResult test_pred = Check(mq.Fetch(t));
    double spread = 0;
    for (double v : test_pred.columns[0]) spread += std::abs(v);
    std::printf("  %-7s mean |pred| on test = %.4f (%s)\n", model.c_str(),
                spread / static_cast<double>(test_pred.columns[0].size()),
                test_pred.used_read ? "read" : "re-run");
  }

  // --- COL_DIFF: where do P1_v0 and P3_v0 disagree most? ---
  FetchResult a = Check(mq.GetIntermediates({"zillow.P1_v0.pred_test.pred"}));
  FetchResult b = Check(mq.GetIntermediates({"zillow.P3_v0.pred_test.pred"}));
  std::vector<double> diff(a.columns[0].size());
  for (size_t i = 0; i < diff.size(); ++i) {
    diff[i] = std::abs(a.columns[0][i] - b.columns[0][i]);
  }
  const auto disagreements = dq::TopK(diff, 3);
  std::printf("\nlargest P1_v0 vs P3_v0 disagreements (test rows):\n");
  for (const auto& [row, delta] : disagreements) {
    std::printf("  row %llu: |diff| = %.4f\n",
                static_cast<unsigned long long>(row), delta);
  }

  // --- ROW_DIFF: inspect the most-disagreed-on home vs its neighbour. ---
  const uint64_t suspect = disagreements[0].first;
  FetchRequest features;
  features.project = "zillow";
  features.model = "P1_v0";
  features.intermediate = "test_merged";
  FetchResult all = Check(mq.Fetch(features));
  const auto neighbours = dq::Knn(all.columns, suspect, 1);
  std::printf("\nfeature deltas: home %llu vs its nearest neighbour %zu:\n",
              static_cast<unsigned long long>(suspect), neighbours[0]);
  const auto deltas = dq::RowDiff(all.columns, suspect, neighbours[0]);
  for (size_t c = 0; c < deltas.size(); ++c) {
    if (std::abs(deltas[c]) > 1e-9 && !std::isnan(deltas[c])) {
      std::printf("  %-32s %+.2f\n", all.column_names[c].c_str(), deltas[c]);
    }
  }
  return 0;
}
