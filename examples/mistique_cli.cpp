// mistique_cli — inspect and query a persisted MISTIQUE store from the
// shell. Demonstrates catalog persistence: any store directory written
// with Mistique::SaveCatalog() can be explored without the original
// process, models, or data.
//
//   mistique_cli <store_dir> ls
//   mistique_cli <store_dir> ls <project.model>
//   mistique_cli <store_dir> fetch <project.model.intermediate.column> [n]
//   mistique_cli <store_dir> scan <project.model.intermediate> <column> <lo> <hi>
//   mistique_cli <store_dir> delete <project.model>
//   mistique_cli <store_dir> stats
//   mistique_cli <store_dir> service_session [sessions] [queries] [workers]
//   mistique_cli <store_dir> serve [port] [workers]
//   mistique_cli <store_dir> train_serve [port] [workers] [epochs] [rows]
//   mistique_cli <store_dir> metrics
//   mistique_cli <store_dir> trace <project.model.intermediate.column> [n]
//   mistique_cli <store_dir> flightrec [n] [chrome.json]
//   mistique_cli <store_dir> slowlog [n]
//
// Remote mode talks the wire protocol to a running `serve` instance; no
// store directory needed on the client machine:
//
//   mistique_cli remote <host:port> ping
//   mistique_cli remote <host:port> stats
//   mistique_cli remote <host:port> metrics
//   mistique_cli remote <host:port> fetch <project.model.intermediate.column> [n]
//   mistique_cli remote <host:port> trace <project.model.intermediate.column> [n]
//   mistique_cli remote <host:port> dtrace <project.model.intermediate.column> [n] [chrome.json]
//   mistique_cli remote <host:port> flightrec [n] [chrome.json]
//   mistique_cli remote <host:port> slowlog [n]
//   mistique_cli remote <host:port> session <project.model.intermediate.column> [S] [Q]

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/rebalance.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "core/mistique.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "service/query_service.h"

using namespace mistique;  // NOLINT: CLI brevity.

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: mistique_cli <store_dir> <command>\n"
      "  ls                              list models\n"
      "  ls <project.model>              list a model's intermediates\n"
      "  fetch <proj.model.interm.col> [n]   print first n values (def 10)\n"
      "  scan <proj.model.interm> <col> <lo> <hi>   predicate scan\n"
      "  delete <project.model>          delete a model + vacuum storage\n"
      "  stats                           storage statistics\n"
      "  service_session [S] [Q] [W]     S concurrent sessions each issuing\n"
      "                                  Q queries via a W-worker service\n"
      "  serve [port] [W]                serve the store over TCP with W\n"
      "                                  workers until SIGTERM/SIGINT\n"
      "  train_serve [port] [W] [E] [N]  serve while a training loop logs E\n"
      "                                  CNN checkpoints over N examples —\n"
      "                                  the MVCC query-during-ingest demo\n"
      "  metrics                         Prometheus-style metric exposition\n"
      "  trace <proj.model.interm.col> [n]   fetch with a cost-decision\n"
      "                                  trace (estimates vs actual stages)\n"
      "  flightrec [n] [json]            profile every intermediate fully\n"
      "                                  sampled, dump the flight recorder\n"
      "                                  (optional Chrome trace_event json)\n"
      "  slowlog [n]                     same workload, slowest-first view\n"
      "       mistique_cli remote <host:port> <command>\n"
      "  ping                            round-trip liveness check\n"
      "  stats                           remote service + query statistics\n"
      "  metrics                         scrape the server's metrics\n"
      "  fetch <proj.model.interm.col> [n]   remote fetch, print n values\n"
      "  trace <proj.model.interm.col> [n]   remote traced fetch\n"
      "  scan <proj.model.interm> <col> <lo> <hi>   remote predicate scan\n"
      "  tracescan <proj.model.interm> <col> <lo> <hi>   remote traced scan\n"
      "                                  (zone-map + scan_packed stages)\n"
      "  dtrace <proj.model.interm.col> [n] [json]   distributed traced\n"
      "                                  fetch: prints the assembled\n"
      "                                  cross-node trace tree\n"
      "  flightrec [n] [json]            recent sampled traces retained by\n"
      "                                  the remote node's flight recorder\n"
      "  slowlog [n]                     the remote node's slow-query log\n"
      "  shardmap                        routing table (routers only)\n"
      "  health                          liveness + load probe\n"
      "  catalog                         model catalog (shape only)\n"
      "  session <proj.model.interm.col> [S] [Q]   S client threads each\n"
      "                                  issuing Q remote fetches\n"
      "       mistique_cli cluster <command>   (docs/CLUSTER.md)\n"
      "  split <src_store> <dst_prefix> <n>   split one store into n shard\n"
      "                                  stores <dst_prefix>0..n-1 by the\n"
      "                                  consistent-hash map\n"
      "  route <port> <host:port>...     serve a router over the listed\n"
      "                                  shards (ids 0..n-1 in order; must\n"
      "                                  match the split order)\n"
      "  rebalance <dst_store> <src host:port> <project.model>...\n"
      "                                  stream models from a running shard\n"
      "                                  into a local store (then delete\n"
      "                                  them at the source)\n");
  return 2;
}

std::atomic<bool> g_shutdown{false};

void HandleSignal(int /*sig*/) { g_shutdown.store(true); }

/// Serving modes honor MISTIQUE_TRACE_SAMPLE_RATE / MISTIQUE_TRACE_SLOW_SEC:
/// the flight-recorder policy knobs (docs/OBSERVABILITY.md) without a
/// config file. Unset variables keep the recorder defaults.
void ApplyTracePolicyFromEnv() {
  obs::FlightRecorder& recorder = obs::GlobalFlightRecorder();
  double rate = recorder.sample_rate();
  double slow = recorder.slow_threshold_sec();
  if (const char* env = std::getenv("MISTIQUE_TRACE_SAMPLE_RATE")) {
    rate = std::atof(env);
  }
  if (const char* env = std::getenv("MISTIQUE_TRACE_SLOW_SEC")) {
    slow = std::atof(env);
  }
  recorder.SetPolicy(rate, slow);
}

void PrintTraceList(const std::vector<obs::QueryTrace>& traces) {
  if (traces.empty()) {
    std::printf("(no traces retained)\n");
    return;
  }
  for (size_t i = 0; i < traces.size(); ++i) {
    std::printf("--- trace %zu/%zu ---\n", i + 1, traces.size());
    std::fputs(traces[i].Format().c_str(), stdout);
  }
}

/// Writes the Chrome trace_event JSON for `trace` (load the file via
/// chrome://tracing or ui.perfetto.dev).
void ExportChromeJson(const obs::QueryTrace& trace, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  const std::string json = obs::TraceToChromeJson(trace);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote Chrome trace to %s\n", path);
}

/// Splits "host:port"; exits on malformed input.
net::ClientOptions ParseEndpoint(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    std::fprintf(stderr, "expected host:port, got %s\n", endpoint.c_str());
    std::exit(2);
  }
  net::ClientOptions options;
  options.host = endpoint.substr(0, colon);
  options.port =
      static_cast<uint16_t>(std::strtoul(endpoint.c_str() + colon + 1,
                                         nullptr, 10));
  return options;
}

void PrintRemoteStats(const ServiceStats& stats) {
  std::printf("open sessions:        %zu%s\n", stats.open_sessions,
              stats.draining ? "   (DRAINING)" : "");
  std::printf("submitted:            %llu\n",
              static_cast<unsigned long long>(stats.submitted));
  std::printf("completed:            %llu (%llu cache hits / %llu lookups)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_lookups));
  std::printf("rejected:             %llu\n",
              static_cast<unsigned long long>(stats.rejected));
  std::printf("expired / failed:     %llu / %llu\n",
              static_cast<unsigned long long>(stats.expired),
              static_cast<unsigned long long>(stats.failed));
  std::printf("abandoned (drain):    %llu\n",
              static_cast<unsigned long long>(stats.abandoned));
  std::printf("queued / running:     %llu / %llu\n",
              static_cast<unsigned long long>(stats.queued),
              static_cast<unsigned long long>(stats.running));
  std::printf("latency:              p50 %.2fms  p95 %.2fms\n",
              stats.p50_latency_sec * 1e3, stats.p95_latency_sec * 1e3);
  std::printf("disk read:            %.1fKB\n", stats.bytes_read / 1e3);
  std::printf("corruptions detected: %llu\n",
              static_cast<unsigned long long>(stats.corruptions_detected));
  std::printf("partitions healed:    %llu\n",
              static_cast<unsigned long long>(stats.partitions_healed));
}

int RunRemote(int argc, char** argv) {
  // argv: remote <host:port> <command> [args...]
  if (argc < 4) return Usage();
  net::ClientOptions options = ParseEndpoint(argv[2]);
  const std::string command = argv[3];
  net::Client client(options);

  if (command == "ping") {
    const auto start = std::chrono::steady_clock::now();
    Check(client.Ping());
    const double ms = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count() *
                      1e3;
    std::printf("pong from %s (%.2fms)\n", argv[2], ms);
    return 0;
  }
  if (command == "stats") {
    PrintRemoteStats(Check(client.Stats()));
    return 0;
  }
  if (command == "metrics") {
    std::fputs(Check(client.Metrics()).c_str(), stdout);
    return 0;
  }
  if (command == "trace" && argc >= 5) {
    const uint64_t n = argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 10;
    FetchRequest request =
        Check(Mistique::ParseIntermediateKeys({argv[4]}, n));
    wire::TraceResultSummary summary;
    const obs::QueryTrace trace = Check(client.TraceFetch(request, &summary));
    std::fputs(trace.Format().c_str(), stdout);
    std::fprintf(stderr, "(%llu rows x %llu cols via %s, remote)\n",
                 static_cast<unsigned long long>(summary.rows),
                 static_cast<unsigned long long>(summary.cols),
                 summary.used_read ? "read" : "re-run");
    return 0;
  }
  if (command == "fetch" && argc >= 5) {
    const uint64_t n = argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 10;
    FetchRequest request =
        Check(Mistique::ParseIntermediateKeys({argv[4]}, n));
    FetchResult result = Check(client.Fetch(request));
    for (size_t c = 0; c < result.column_names.size(); ++c) {
      std::printf("%s%s", c ? "," : "", result.column_names[c].c_str());
    }
    std::printf("\n");
    const size_t rows = result.columns.empty() ? 0 : result.columns[0].size();
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < result.columns.size(); ++c) {
        std::printf("%s%.8g", c ? "," : "", result.columns[c][r]);
      }
      std::printf("\n");
    }
    std::fprintf(stderr, "(%zu rows via %s, remote)\n", rows,
                 result.used_read ? "read" : "re-run");
    return 0;
  }
  if ((command == "scan" || command == "tracescan") && argc == 8) {
    ScanRequest scan;
    const std::string target = argv[4];
    const size_t d1 = target.find('.');
    const size_t d2 = target.find('.', d1 + 1);
    if (d1 == std::string::npos || d2 == std::string::npos) {
      std::fprintf(stderr, "expected project.model.intermediate\n");
      return 2;
    }
    scan.project = target.substr(0, d1);
    scan.model = target.substr(d1 + 1, d2 - d1 - 1);
    scan.intermediate = target.substr(d2 + 1);
    scan.predicate_column = argv[5];
    scan.lo = std::atof(argv[6]);
    scan.hi = std::atof(argv[7]);
    if (command == "tracescan") {
      wire::TraceResultSummary summary;
      const obs::QueryTrace trace = Check(client.TraceScan(scan, &summary));
      std::fputs(trace.Format().c_str(), stdout);
      std::fprintf(stderr, "(%llu matching rows x %llu cols, remote)\n",
                   static_cast<unsigned long long>(summary.rows),
                   static_cast<unsigned long long>(summary.cols));
      return 0;
    }
    ScanResult result = Check(client.Scan(scan));
    for (uint64_t row : result.row_ids) {
      std::printf("%llu\n", static_cast<unsigned long long>(row));
    }
    std::fprintf(stderr, "(%zu rows; %llu blocks scanned, %llu pruned, "
                 "remote)\n",
                 result.row_ids.size(),
                 static_cast<unsigned long long>(result.blocks_scanned),
                 static_cast<unsigned long long>(result.blocks_pruned));
    return 0;
  }
  if (command == "slowlog") {
    const uint32_t n =
        argc >= 5 ? static_cast<uint32_t>(std::strtoul(argv[4], nullptr, 10))
                  : 0;
    PrintTraceList(Check(client.SlowLog(n)));
    return 0;
  }
  if (command == "flightrec") {
    const uint32_t n =
        argc >= 5 ? static_cast<uint32_t>(std::strtoul(argv[4], nullptr, 10))
                  : 0;
    const std::vector<obs::QueryTrace> traces = Check(client.TraceDump(n));
    PrintTraceList(traces);
    if (argc >= 6 && !traces.empty()) ExportChromeJson(traces.front(), argv[5]);
    return 0;
  }
  if (command == "dtrace" && argc >= 5) {
    // Distributed traced fetch: the request travels in a kTracedReq
    // envelope, so a router answers with its assembled per-shard tree.
    const uint64_t n = argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 10;
    FetchRequest request =
        Check(Mistique::ParseIntermediateKeys({argv[4]}, n));
    client.SetTraceContext({obs::NewTraceId(), 0, true});
    FetchResult result = Check(client.Fetch(request));
    std::optional<obs::QueryTrace> trace = client.TakeLastTrace();
    client.ClearTraceContext();
    if (trace.has_value()) {
      std::fputs(trace->Format().c_str(), stdout);
      if (argc >= 7) ExportChromeJson(*trace, argv[6]);
    } else {
      std::printf("(hop attached no trace)\n");
    }
    const size_t rows = result.columns.empty() ? 0 : result.columns[0].size();
    std::fprintf(stderr, "(%zu rows x %zu cols, remote)\n", rows,
                 result.columns.size());
    return 0;
  }
  if (command == "shardmap") {
    const wire::ShardMapInfo map = Check(client.FetchShardMap());
    std::printf("version %llu, %u vnodes/shard\n",
                static_cast<unsigned long long>(map.version),
                map.vnodes_per_shard);
    std::printf("%-8s %-22s %s\n", "shard", "endpoint", "health");
    for (const wire::ShardEntry& shard : map.shards) {
      std::printf("%-8u %-22s %s\n", shard.shard_id,
                  (shard.host + ":" + std::to_string(shard.port)).c_str(),
                  shard.health == 0 ? "up" : "DOWN");
    }
    return 0;
  }
  if (command == "health") {
    const wire::HealthInfo health = Check(client.Health());
    std::printf("state:         %s\n",
                health.state == 0 ? "serving" : "draining");
    std::printf("queued:        %llu\n",
                static_cast<unsigned long long>(health.queued));
    std::printf("running:       %llu\n",
                static_cast<unsigned long long>(health.running));
    std::printf("open sessions: %llu\n",
                static_cast<unsigned long long>(health.open_sessions));
    return 0;
  }
  if (command == "catalog") {
    const wire::CatalogInfo catalog = Check(client.Catalog());
    for (const wire::CatalogModel& model : catalog.models) {
      std::printf("%s.%s (%s)\n", model.project.c_str(), model.model.c_str(),
                  model.kind == 0 ? "TRAD" : "DNN");
      for (const wire::CatalogIntermediate& interm : model.intermediates) {
        std::printf("  %-20s stage %2d, %llu rows, %zu cols\n",
                    interm.name.c_str(), interm.stage_index,
                    static_cast<unsigned long long>(interm.num_rows),
                    interm.columns.size());
      }
    }
    return 0;
  }
  if (command == "session" && argc >= 5) {
    const std::string key = argv[4];
    const size_t num_clients =
        argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 4;
    const size_t queries = argc >= 7 ? std::strtoull(argv[6], nullptr, 10) : 25;
    FetchRequest request =
        Check(Mistique::ParseIntermediateKeys({key}, 32));

    std::atomic<uint64_t> errors{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < num_clients; ++c) {
      threads.emplace_back([&] {
        net::Client worker(options);
        for (size_t q = 0; q < queries; ++q) {
          if (!worker.Fetch(request).ok()) errors++;
        }
        Check(worker.CloseSession());
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const uint64_t total = num_clients * queries;
    std::printf("remote session: %zu clients x %zu queries in %.3fs "
                "(%.0f queries/s), %llu errors\n",
                num_clients, queries, elapsed,
                static_cast<double>(total) / elapsed,
                static_cast<unsigned long long>(errors.load()));
    return errors.load() == 0 ? 0 : 1;
  }
  return Usage();
}

void ListModels(const Mistique& mq) {
  std::printf("%-30s %-6s %s\n", "model", "kind", "intermediates");
  for (ModelId id : mq.metadata().ListModels()) {
    const ModelInfo* model = Check(mq.metadata().GetModel(id));
    std::printf("%-30s %-6s %zu\n",
                (model->project + "." + model->name).c_str(),
                model->kind == ModelKind::kTrad ? "TRAD" : "DNN",
                model->intermediates.size());
  }
}

void ListIntermediates(const Mistique& mq, const std::string& target) {
  const size_t dot = target.find('.');
  if (dot == std::string::npos) {
    std::fprintf(stderr, "expected project.model\n");
    std::exit(2);
  }
  const ModelId id = Check(
      mq.metadata().FindModel(target.substr(0, dot), target.substr(dot + 1)));
  const ModelInfo* model = Check(mq.metadata().GetModel(id));
  std::printf("%-20s %8s %8s %12s %8s %s\n", "intermediate", "rows", "cols",
              "stored", "queries", "scheme");
  for (const IntermediateInfo& interm : model->intermediates) {
    uint64_t stored = 0;
    for (const ColumnInfo& col : interm.columns) stored += col.stored_bytes;
    std::printf("%-20s %8llu %8zu %10.1fKB %8llu %s%s\n",
                interm.name.c_str(),
                static_cast<unsigned long long>(interm.num_rows),
                interm.columns.size(), stored / 1e3,
                static_cast<unsigned long long>(interm.n_query),
                QuantSchemeName(interm.scheme, interm.kbits).c_str(),
                interm.pool_sigma > 1
                    ? ("+pool(" + std::to_string(interm.pool_sigma) + ")")
                          .c_str()
                    : "");
  }
}

/// Splits "project.model"; exits on malformed input.
void SplitModelRef(const std::string& ref, std::string* project,
                   std::string* model) {
  const size_t dot = ref.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= ref.size()) {
    std::fprintf(stderr, "expected project.model, got %s\n", ref.c_str());
    std::exit(2);
  }
  *project = ref.substr(0, dot);
  *model = ref.substr(dot + 1);
}

int RunCluster(int argc, char** argv) {
  // argv: cluster <command> [args...]
  if (argc < 3) return Usage();
  const std::string command = argv[2];

  if (command == "split" && argc == 6) {
    const std::string src_dir = argv[3];
    const std::string dst_prefix = argv[4];
    const size_t n = std::strtoull(argv[5], nullptr, 10);
    if (n == 0) return Usage();
    if (!std::filesystem::exists(src_dir + "/catalog.mq")) {
      std::fprintf(stderr, "no catalog found in %s\n", src_dir.c_str());
      return 1;
    }
    MistiqueOptions src_options;
    src_options.store.directory = src_dir;
    Mistique src;
    Check(src.Open(src_options));

    std::vector<cluster::ShardSpec> specs;
    std::vector<std::unique_ptr<Mistique>> stores;
    std::vector<Mistique*> dst;
    for (size_t i = 0; i < n; ++i) {
      specs.push_back({static_cast<uint32_t>(i), "", 0});
      const std::string dir = dst_prefix + std::to_string(i);
      std::filesystem::create_directories(dir);
      MistiqueOptions options;
      options.store.directory = dir;
      stores.push_back(std::make_unique<Mistique>());
      Check(stores.back()->Open(options));
      dst.push_back(stores.back().get());
    }
    // Endpoints are irrelevant here: ring placement hashes only shard
    // ids, so `route` over any endpoints with ids 0..n-1 matches.
    const cluster::ShardMap map(1, specs);
    const std::vector<size_t> assigned =
        Check(cluster::SplitStore(&src, dst, map));
    for (size_t i = 0; i < n; ++i) {
      Check(dst[i]->Flush());
      Check(dst[i]->SaveCatalog());
      std::printf("shard %zu (%s%zu): %zu models\n", i, dst_prefix.c_str(), i,
                  assigned[i]);
    }
    return 0;
  }

  if (command == "route" && argc >= 5) {
    const uint16_t port =
        static_cast<uint16_t>(std::strtoul(argv[3], nullptr, 10));
    std::vector<cluster::ShardSpec> specs;
    for (int i = 4; i < argc; ++i) {
      const net::ClientOptions endpoint = ParseEndpoint(argv[i]);
      specs.push_back({static_cast<uint32_t>(i - 4), endpoint.host,
                       endpoint.port});
    }
    ApplyTracePolicyFromEnv();
    cluster::Router router(cluster::ShardMap(1, specs));
    Check(router.Start());

    net::ServerOptions server_options;
    server_options.port = port;
    net::Server server(&router, server_options);
    Check(server.Start());

    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    std::printf("routing %zu shards on %s:%u (SIGTERM to stop)\n",
                specs.size(), server_options.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    while (!g_shutdown.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("shutting down: draining forwarded requests...\n");
    std::fflush(stdout);
    server.Stop();
    const cluster::RouterStats stats = router.Stats();
    router.Stop();
    std::printf("routed: %llu fetches, %llu scans, %llu traces; "
                "%llu retries, %llu hedges (%llu won), %llu degraded, "
                "%llu rejoins\n",
                static_cast<unsigned long long>(stats.fetches),
                static_cast<unsigned long long>(stats.scans),
                static_cast<unsigned long long>(stats.traces),
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.hedges),
                static_cast<unsigned long long>(stats.hedge_wins),
                static_cast<unsigned long long>(stats.degraded),
                static_cast<unsigned long long>(stats.rejoins));
    return 0;
  }

  if (command == "rebalance" && argc >= 6) {
    const std::string dst_dir = argv[3];
    net::ClientOptions src_endpoint = ParseEndpoint(argv[4]);
    std::filesystem::create_directories(dst_dir);
    MistiqueOptions options;
    options.store.directory = dst_dir;
    Mistique dst;
    Check(dst.Open(options));
    net::Client src(src_endpoint);
    for (int i = 5; i < argc; ++i) {
      std::string project, model;
      SplitModelRef(argv[i], &project, &model);
      Check(cluster::PullModel(&src, &dst, project, model));
      std::printf("pulled %s.%s from %s\n", project.c_str(), model.c_str(),
                  argv[4]);
    }
    Check(dst.Flush());
    Check(dst.SaveCatalog());
    std::printf("rebalance done: %d models now in %s (delete them at the "
                "source to finish the move)\n",
                argc - 5, dst_dir.c_str());
    return 0;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string store_dir = argv[1];
  const std::string command = argv[2];

  // Remote and cluster modes need no local store.
  if (store_dir == "remote") return RunRemote(argc, argv);
  if (store_dir == "cluster") return RunCluster(argc, argv);

  // train_serve creates its store; everything else inspects an existing one.
  if (command != "train_serve" &&
      !std::filesystem::exists(store_dir + "/catalog.mq")) {
    std::fprintf(stderr,
                 "no catalog found in %s (was SaveCatalog() called?)\n",
                 store_dir.c_str());
    return 1;
  }
  MistiqueOptions options;
  options.store.directory = store_dir;
  Mistique mq;
  Check(mq.Open(options));

  if (command == "ls" && argc == 3) {
    ListModels(mq);
    return 0;
  }
  if (command == "ls" && argc == 4) {
    ListIntermediates(mq, argv[3]);
    return 0;
  }
  if (command == "fetch" && argc >= 4) {
    const uint64_t n = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 10;
    FetchResult result = Check(mq.GetIntermediates({argv[3]}, n));
    for (size_t c = 0; c < result.column_names.size(); ++c) {
      std::printf("%s%s", c ? "," : "", result.column_names[c].c_str());
    }
    std::printf("\n");
    const size_t rows = result.columns.empty() ? 0 : result.columns[0].size();
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < result.columns.size(); ++c) {
        std::printf("%s%.8g", c ? "," : "", result.columns[c][r]);
      }
      std::printf("\n");
    }
    std::fprintf(stderr, "(%zu rows via %s)\n", rows,
                 result.used_read ? "read" : "re-run");
    return 0;
  }
  if (command == "scan" && argc == 7) {
    ScanRequest scan;
    const std::string target = argv[3];
    const size_t d1 = target.find('.');
    const size_t d2 = target.find('.', d1 + 1);
    if (d1 == std::string::npos || d2 == std::string::npos) {
      std::fprintf(stderr, "expected project.model.intermediate\n");
      return 2;
    }
    scan.project = target.substr(0, d1);
    scan.model = target.substr(d1 + 1, d2 - d1 - 1);
    scan.intermediate = target.substr(d2 + 1);
    scan.predicate_column = argv[4];
    scan.lo = std::atof(argv[5]);
    scan.hi = std::atof(argv[6]);
    ScanResult result = Check(mq.Scan(scan));
    for (uint64_t row : result.row_ids) {
      std::printf("%llu\n", static_cast<unsigned long long>(row));
    }
    std::fprintf(stderr, "(%zu rows; %llu blocks scanned, %llu pruned)\n",
                 result.row_ids.size(),
                 static_cast<unsigned long long>(result.blocks_scanned),
                 static_cast<unsigned long long>(result.blocks_pruned));
    return 0;
  }
  if (command == "delete" && argc == 4) {
    const std::string target = argv[3];
    const size_t dot = target.find('.');
    if (dot == std::string::npos) {
      std::fprintf(stderr, "expected project.model\n");
      return 2;
    }
    Check(mq.DeleteModel(target.substr(0, dot), target.substr(dot + 1)));
    const uint64_t reclaimed = Check(mq.Vacuum());
    Check(mq.SaveCatalog());
    std::printf("deleted %s; reclaimed %llu bytes\n", target.c_str(),
                static_cast<unsigned long long>(reclaimed));
    return 0;
  }
  if (command == "service_session") {
    const size_t num_sessions =
        argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 4;
    const size_t queries = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 50;
    const size_t workers = argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 4;

    // The session workload: every intermediate of every model, cycled.
    std::vector<FetchRequest> requests;
    for (ModelId id : mq.metadata().ListModels()) {
      const ModelInfo* model = Check(mq.metadata().GetModel(id));
      for (const IntermediateInfo& interm : model->intermediates) {
        FetchRequest req;
        req.project = model->project;
        req.model = model->name;
        req.intermediate = interm.name;
        req.n_ex = interm.num_rows < 32 ? interm.num_rows : 32;
        requests.push_back(std::move(req));
      }
    }
    if (requests.empty()) {
      std::fprintf(stderr, "store has no intermediates to query\n");
      return 1;
    }

    QueryServiceOptions service_options;
    service_options.num_workers = workers;
    QueryService service(&mq, service_options);
    std::printf("service_session: %zu sessions x %zu queries, %zu workers, "
                "%zu distinct intermediates\n",
                num_sessions, queries, service.num_workers(),
                requests.size());

    std::atomic<uint64_t> errors{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (size_t s = 0; s < num_sessions; ++s) {
      clients.emplace_back([&, s] {
        const SessionId session = service.OpenSession();
        for (size_t q = 0; q < queries; ++q) {
          const FetchRequest& req = requests[(s + q) % requests.size()];
          if (!service.Fetch(session, req).ok()) errors++;
        }
        Check(service.CloseSession(session));
      });
    }
    for (auto& t : clients) t.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    const ServiceStats stats = service.Stats();
    const uint64_t total = num_sessions * queries;
    std::printf("elapsed:        %.3fs (%.0f queries/s)\n", elapsed,
                static_cast<double>(total) / elapsed);
    std::printf("completed:      %llu (%llu cache hits)\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.cache_hits));
    std::printf("rejected:       %llu   expired: %llu   failed: %llu\n",
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.failed));
    std::printf("latency:        p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
                stats.p50_latency_sec * 1e3, stats.p95_latency_sec * 1e3,
                stats.p99_latency_sec * 1e3);
    std::printf("disk read:      %.1fKB\n", stats.bytes_read / 1e3);
    return errors.load() == 0 ? 0 : 1;
  }
  if (command == "serve") {
    const uint16_t port =
        argc >= 4 ? static_cast<uint16_t>(std::strtoul(argv[3], nullptr, 10))
                  : 0;
    const size_t workers = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 4;

    ApplyTracePolicyFromEnv();
    QueryServiceOptions service_options;
    service_options.num_workers = workers;
    QueryService service(&mq, service_options);

    net::ServerOptions server_options;
    server_options.port = port;
    net::Server server(&service, server_options);
    Check(server.Start());

    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    std::printf("serving %s on %s:%u with %zu workers (SIGTERM to stop)\n",
                store_dir.c_str(), server_options.host.c_str(),
                static_cast<unsigned>(server.port()), service.num_workers());
    std::fflush(stdout);

    while (!g_shutdown.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("shutting down: draining in-flight queries...\n");
    std::fflush(stdout);
    server.Stop();

    const ServiceStats stats = service.Stats();
    const net::ServerStats net_stats = server.Stats();
    std::printf("drained: %llu completed, %llu abandoned, %llu rejected; "
                "%llu connections served, %llu protocol errors\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.abandoned),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(net_stats.connections_accepted),
                static_cast<unsigned long long>(net_stats.protocol_errors));
    return 0;
  }
  if (command == "train_serve") {
    // The MVCC demo (docs/MVCC.md): serve the store over TCP while a
    // training loop streams checkpoints into the SAME engine. Remote
    // readers query already-published checkpoints with zero stalls; each
    // LogNetwork publishes atomically, so a checkpoint is either fully
    // visible or not listed at all.
    const uint16_t port =
        argc >= 4 ? static_cast<uint16_t>(std::strtoul(argv[3], nullptr, 10))
                  : 0;
    const size_t workers = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 4;
    const int epochs = argc >= 6 ? std::atoi(argv[5]) : 4;
    const int rows = argc >= 7 ? std::atoi(argv[6]) : 256;

    ApplyTracePolicyFromEnv();
    QueryServiceOptions service_options;
    service_options.num_workers = workers;
    QueryService service(&mq, service_options);

    net::ServerOptions server_options;
    server_options.port = port;
    net::Server server(&service, server_options);
    Check(server.Start());

    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    std::printf("serving %s on %s:%u with %zu workers (SIGTERM to stop)\n",
                store_dir.c_str(), server_options.host.c_str(),
                static_cast<unsigned>(server.port()), service.num_workers());
    std::fflush(stdout);

    // The training loop: one CIFAR CNN, perturbed a little each epoch
    // (simulated fine-tuning); every epoch's activations are logged as a
    // checkpoint model. Runs on this thread — the server threads keep
    // answering queries throughout.
    CifarConfig data_config;
    data_config.num_examples = rows;
    const CifarData data = GenerateCifar(data_config);
    auto input = std::make_shared<Tensor>(data.images);
    auto net = BuildCifarCnn({});
    for (int epoch = 0; epoch < epochs && !g_shutdown.load(); ++epoch) {
      if (epoch > 0) {
        net->PerturbTrainable(700 + static_cast<uint64_t>(epoch),
                              0.05 / epoch);
      }
      Check(mq.LogNetwork(net.get(), input, "cifar",
                          "ckpt_e" + std::to_string(epoch))
                .status());
      Check(mq.SaveCatalog());
      std::printf("published cifar.ckpt_e%d (mvcc epoch %llu)\n", epoch,
                  static_cast<unsigned long long>(mq.CurrentEpoch()));
      std::fflush(stdout);
    }
    std::printf("training done: %d checkpoints\n", epochs);
    std::fflush(stdout);

    while (!g_shutdown.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("shutting down: draining in-flight queries...\n");
    std::fflush(stdout);
    server.Stop();

    const ServiceStats stats = service.Stats();
    std::printf("drained: %llu completed, %llu rejected, %llu failed\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.failed));
    return 0;
  }
  if (command == "metrics") {
    // A throwaway service so the exposition includes the service-level
    // histograms/gauges alongside the engine and storage metrics the
    // catalog recovery above already populated.
    QueryService service(&mq);
    std::fputs(service.MetricsText().c_str(), stdout);
    return 0;
  }
  if (command == "flightrec" || command == "slowlog") {
    // Local profiling: fetch every intermediate once through a
    // fully-sampled service, then dump what the recorder retained —
    // `flightrec` shows the recent ring (newest first), `slowlog` the
    // slowest queries. A tiny slow threshold means everything also
    // lands in the slow log, so both views work on a one-shot workload.
    const size_t n = argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 0;
    obs::FlightRecorder& recorder = obs::GlobalFlightRecorder();
    recorder.SetPolicy(1.0, 1e-9);
    QueryService service(&mq);
    const SessionId session = service.OpenSession();
    for (ModelId id : mq.metadata().ListModels()) {
      const ModelInfo* model = Check(mq.metadata().GetModel(id));
      for (const IntermediateInfo& interm : model->intermediates) {
        FetchRequest req;
        req.project = model->project;
        req.model = model->name;
        req.intermediate = interm.name;
        req.n_ex = interm.num_rows < 32 ? interm.num_rows : 32;
        (void)service.Fetch(session, req);
      }
    }
    Check(service.CloseSession(session));
    const std::vector<obs::QueryTrace> traces =
        command == "slowlog" ? recorder.SlowLog(n) : recorder.Dump(n);
    PrintTraceList(traces);
    if (command == "flightrec" && argc >= 5 && !traces.empty()) {
      ExportChromeJson(traces.front(), argv[4]);
    }
    return 0;
  }
  if (command == "trace" && argc >= 4) {
    const uint64_t n = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 10;
    FetchRequest request =
        Check(Mistique::ParseIntermediateKeys({argv[3]}, n));
    QueryService service(&mq);
    const SessionId session = service.OpenSession();
    TracedFetch traced = Check(service.TraceFetch(session, request));
    std::fputs(traced.trace.Format().c_str(), stdout);
    const size_t rows =
        traced.result.columns.empty() ? 0 : traced.result.columns[0].size();
    std::fprintf(stderr, "(%zu rows x %zu cols via %s)\n", rows,
                 traced.result.columns.size(),
                 traced.result.used_read ? "read" : "re-run");
    return 0;
  }
  if (command == "stats") {
    std::printf("models:            %zu\n", mq.metadata().num_models());
    std::printf("partitions on disk: %zu\n",
                mq.store().disk().num_partitions());
    std::printf("compressed bytes:  %llu\n",
                static_cast<unsigned long long>(mq.store().stored_bytes()));
    std::printf("chunks indexed:    %zu\n", mq.store().num_chunks());
    return 0;
  }
  return Usage();
}
