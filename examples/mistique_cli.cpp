// mistique_cli — inspect and query a persisted MISTIQUE store from the
// shell. Demonstrates catalog persistence: any store directory written
// with Mistique::SaveCatalog() can be explored without the original
// process, models, or data.
//
//   mistique_cli <store_dir> ls
//   mistique_cli <store_dir> ls <project.model>
//   mistique_cli <store_dir> fetch <project.model.intermediate.column> [n]
//   mistique_cli <store_dir> scan <project.model.intermediate> <column> <lo> <hi>
//   mistique_cli <store_dir> delete <project.model>
//   mistique_cli <store_dir> stats
//   mistique_cli <store_dir> service_session [sessions] [queries] [workers]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/mistique.h"
#include "service/query_service.h"

using namespace mistique;  // NOLINT: CLI brevity.

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: mistique_cli <store_dir> <command>\n"
      "  ls                              list models\n"
      "  ls <project.model>              list a model's intermediates\n"
      "  fetch <proj.model.interm.col> [n]   print first n values (def 10)\n"
      "  scan <proj.model.interm> <col> <lo> <hi>   predicate scan\n"
      "  delete <project.model>          delete a model + vacuum storage\n"
      "  stats                           storage statistics\n"
      "  service_session [S] [Q] [W]     S concurrent sessions each issuing\n"
      "                                  Q queries via a W-worker service\n");
  return 2;
}

void ListModels(const Mistique& mq) {
  std::printf("%-30s %-6s %s\n", "model", "kind", "intermediates");
  for (ModelId id : mq.metadata().ListModels()) {
    const ModelInfo* model = Check(mq.metadata().GetModel(id));
    std::printf("%-30s %-6s %zu\n",
                (model->project + "." + model->name).c_str(),
                model->kind == ModelKind::kTrad ? "TRAD" : "DNN",
                model->intermediates.size());
  }
}

void ListIntermediates(const Mistique& mq, const std::string& target) {
  const size_t dot = target.find('.');
  if (dot == std::string::npos) {
    std::fprintf(stderr, "expected project.model\n");
    std::exit(2);
  }
  const ModelId id = Check(
      mq.metadata().FindModel(target.substr(0, dot), target.substr(dot + 1)));
  const ModelInfo* model = Check(mq.metadata().GetModel(id));
  std::printf("%-20s %8s %8s %12s %8s %s\n", "intermediate", "rows", "cols",
              "stored", "queries", "scheme");
  for (const IntermediateInfo& interm : model->intermediates) {
    uint64_t stored = 0;
    for (const ColumnInfo& col : interm.columns) stored += col.stored_bytes;
    std::printf("%-20s %8llu %8zu %10.1fKB %8llu %s%s\n",
                interm.name.c_str(),
                static_cast<unsigned long long>(interm.num_rows),
                interm.columns.size(), stored / 1e3,
                static_cast<unsigned long long>(interm.n_query),
                QuantSchemeName(interm.scheme, interm.kbits).c_str(),
                interm.pool_sigma > 1
                    ? ("+pool(" + std::to_string(interm.pool_sigma) + ")")
                          .c_str()
                    : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string store_dir = argv[1];
  const std::string command = argv[2];

  if (!std::filesystem::exists(store_dir + "/catalog.mq")) {
    std::fprintf(stderr,
                 "no catalog found in %s (was SaveCatalog() called?)\n",
                 store_dir.c_str());
    return 1;
  }
  MistiqueOptions options;
  options.store.directory = store_dir;
  Mistique mq;
  Check(mq.Open(options));

  if (command == "ls" && argc == 3) {
    ListModels(mq);
    return 0;
  }
  if (command == "ls" && argc == 4) {
    ListIntermediates(mq, argv[3]);
    return 0;
  }
  if (command == "fetch" && argc >= 4) {
    const uint64_t n = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 10;
    FetchResult result = Check(mq.GetIntermediates({argv[3]}, n));
    for (size_t c = 0; c < result.column_names.size(); ++c) {
      std::printf("%s%s", c ? "," : "", result.column_names[c].c_str());
    }
    std::printf("\n");
    const size_t rows = result.columns.empty() ? 0 : result.columns[0].size();
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < result.columns.size(); ++c) {
        std::printf("%s%.8g", c ? "," : "", result.columns[c][r]);
      }
      std::printf("\n");
    }
    std::fprintf(stderr, "(%zu rows via %s)\n", rows,
                 result.used_read ? "read" : "re-run");
    return 0;
  }
  if (command == "scan" && argc == 7) {
    ScanRequest scan;
    const std::string target = argv[3];
    const size_t d1 = target.find('.');
    const size_t d2 = target.find('.', d1 + 1);
    if (d1 == std::string::npos || d2 == std::string::npos) {
      std::fprintf(stderr, "expected project.model.intermediate\n");
      return 2;
    }
    scan.project = target.substr(0, d1);
    scan.model = target.substr(d1 + 1, d2 - d1 - 1);
    scan.intermediate = target.substr(d2 + 1);
    scan.predicate_column = argv[4];
    scan.lo = std::atof(argv[5]);
    scan.hi = std::atof(argv[6]);
    ScanResult result = Check(mq.Scan(scan));
    for (uint64_t row : result.row_ids) {
      std::printf("%llu\n", static_cast<unsigned long long>(row));
    }
    std::fprintf(stderr, "(%zu rows; %llu blocks scanned, %llu pruned)\n",
                 result.row_ids.size(),
                 static_cast<unsigned long long>(result.blocks_scanned),
                 static_cast<unsigned long long>(result.blocks_pruned));
    return 0;
  }
  if (command == "delete" && argc == 4) {
    const std::string target = argv[3];
    const size_t dot = target.find('.');
    if (dot == std::string::npos) {
      std::fprintf(stderr, "expected project.model\n");
      return 2;
    }
    Check(mq.DeleteModel(target.substr(0, dot), target.substr(dot + 1)));
    const uint64_t reclaimed = Check(mq.Vacuum());
    Check(mq.SaveCatalog());
    std::printf("deleted %s; reclaimed %llu bytes\n", target.c_str(),
                static_cast<unsigned long long>(reclaimed));
    return 0;
  }
  if (command == "service_session") {
    const size_t num_sessions =
        argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 4;
    const size_t queries = argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 50;
    const size_t workers = argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 4;

    // The session workload: every intermediate of every model, cycled.
    std::vector<FetchRequest> requests;
    for (ModelId id : mq.metadata().ListModels()) {
      const ModelInfo* model = Check(mq.metadata().GetModel(id));
      for (const IntermediateInfo& interm : model->intermediates) {
        FetchRequest req;
        req.project = model->project;
        req.model = model->name;
        req.intermediate = interm.name;
        req.n_ex = interm.num_rows < 32 ? interm.num_rows : 32;
        requests.push_back(std::move(req));
      }
    }
    if (requests.empty()) {
      std::fprintf(stderr, "store has no intermediates to query\n");
      return 1;
    }

    QueryServiceOptions service_options;
    service_options.num_workers = workers;
    QueryService service(&mq, service_options);
    std::printf("service_session: %zu sessions x %zu queries, %zu workers, "
                "%zu distinct intermediates\n",
                num_sessions, queries, service.num_workers(),
                requests.size());

    std::atomic<uint64_t> errors{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (size_t s = 0; s < num_sessions; ++s) {
      clients.emplace_back([&, s] {
        const SessionId session = service.OpenSession();
        for (size_t q = 0; q < queries; ++q) {
          const FetchRequest& req = requests[(s + q) % requests.size()];
          if (!service.Fetch(session, req).ok()) errors++;
        }
        Check(service.CloseSession(session));
      });
    }
    for (auto& t : clients) t.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    const ServiceStats stats = service.Stats();
    const uint64_t total = num_sessions * queries;
    std::printf("elapsed:        %.3fs (%.0f queries/s)\n", elapsed,
                static_cast<double>(total) / elapsed);
    std::printf("completed:      %llu (%llu cache hits)\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.cache_hits));
    std::printf("rejected:       %llu   expired: %llu   failed: %llu\n",
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.failed));
    std::printf("latency:        p50 %.2fms  p95 %.2fms\n",
                stats.p50_latency_sec * 1e3, stats.p95_latency_sec * 1e3);
    std::printf("disk read:      %.1fKB\n", stats.bytes_read / 1e3);
    return errors.load() == 0 ? 0 : 1;
  }
  if (command == "stats") {
    std::printf("models:            %zu\n", mq.metadata().num_models());
    std::printf("partitions on disk: %zu\n",
                mq.store().disk().num_partitions());
    std::printf("compressed bytes:  %llu\n",
                static_cast<unsigned long long>(mq.store().stored_bytes()));
    std::printf("chunks indexed:    %zu\n", mq.store().num_chunks());
    return 0;
  }
  return Usage();
}
