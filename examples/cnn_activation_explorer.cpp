// DNN activation exploration — the ActiVis / DeepVis-style scenario from
// the paper's introduction. Logs a CNN's per-layer activations (pooled +
// quantized), then answers interpretability queries: neuron heatmaps by
// class, top-activating images per neuron, nearest-neighbour images in
// representation space, and SVCCA layer similarity.
//
//   build/examples/cnn_activation_explorer

#include <cstdio>
#include <filesystem>

#include "core/mistique.h"
#include "diagnostics/queries.h"
#include "nn/cifar.h"
#include "nn/model_zoo.h"

using namespace mistique;  // NOLINT: example brevity.
namespace dq = diagnostics;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  const std::string workspace = "/tmp/mistique_cnn_explorer";
  std::filesystem::remove_all(workspace);

  // Synthetic class-structured CIFAR-like data + a small CNN.
  CifarConfig data_config;
  data_config.num_examples = 256;
  const CifarData data = GenerateCifar(data_config);
  auto input = std::make_shared<Tensor>(data.images);
  auto net = BuildCifarCnn({});

  // Log with the paper's default storage scheme: POOL_QT(2) + float32.
  MistiqueOptions options;
  options.store.directory = workspace + "/store";
  options.strategy = StorageStrategy::kDedup;
  options.dnn_scheme = QuantScheme::kLp32;
  options.pool_sigma = 2;
  options.row_block_size = 128;
  options.calibrate_on_open = true;
  Mistique mq;
  Check(mq.Open(options));
  Check(mq.LogNetwork(net.get(), input, "cifar", "cnn").status());
  Check(mq.Flush());
  std::printf("logged %zu layers of CIFAR10_CNN over %d images; footprint "
              "%.1f MB\n",
              net->num_layers(), data_config.num_examples,
              mq.StorageFootprintBytes() / 1e6);

  // --- VIS: class-conditioned mean activations of the penultimate layer.
  FetchRequest req;
  req.project = "cifar";
  req.model = "cnn";
  req.intermediate = "layer7";  // fc1.
  FetchResult fc1 = Check(mq.Fetch(req));
  std::printf("\nfetched layer7 (%zu neurons x %zu images) via %s in "
              "%.1f ms\n",
              fc1.columns.size(), fc1.columns[0].size(),
              fc1.used_read ? "READ" : "RERUN", fc1.fetch_seconds * 1e3);
  const auto by_class =
      dq::MeanPerColumnByClass(fc1.columns, data.labels, 10);
  std::printf("class-mean activation of neuron 0 (ActiVis-style heatmap "
              "row):\n  ");
  for (int k = 0; k < 10; ++k) std::printf("%6.3f", by_class[k][0]);
  std::printf("\n");

  // --- TOPK: which images drive the busiest neuron hardest? (Pick the
  // neuron with the highest mean activation — ReLU leaves many dead.)
  const auto neuron_means = dq::MeanPerColumn(fc1.columns);
  size_t busiest = 0;
  for (size_t n = 1; n < neuron_means.size(); ++n) {
    if (neuron_means[n] > neuron_means[busiest]) busiest = n;
  }
  const auto top = dq::TopK(fc1.columns[busiest], 5);
  std::printf("\ntop-5 images for neuron %zu (image: activation, class):\n",
              busiest);
  for (const auto& [row, act] : top) {
    std::printf("  img %3llu: %8.3f  class %d\n",
                static_cast<unsigned long long>(row), act,
                data.labels[row]);
  }

  // --- KNN: representation-space neighbours of image 7.
  const auto neighbours = dq::Knn(fc1.columns, 7, 5);
  std::printf("\nnearest neighbours of image 7 (class %d) in layer7 "
              "space:\n  ",
              data.labels[7]);
  int same_class = 0;
  for (size_t n : neighbours) {
    std::printf("img %zu (class %d)  ", n, data.labels[n]);
    same_class += data.labels[n] == data.labels[7];
  }
  std::printf("\n  %d/5 neighbours share image 7's class\n", same_class);

  // --- SVCCA: how similar is each layer's representation to the logits?
  req.intermediate = "layer8";
  FetchResult logits = Check(mq.Fetch(req));
  std::printf("\nSVCCA similarity to the logits:\n");
  for (const char* layer : {"layer3", "layer6", "layer7"}) {
    req.intermediate = layer;
    FetchResult reps = Check(mq.Fetch(req));
    const double cca =
        Check(dq::SvccaSimilarity(reps.columns, logits.columns));
    std::printf("  %-8s %.4f\n", layer, cca);
  }

  // --- Confusion matrix from the softmax output.
  req.intermediate = "layer9";
  FetchResult softmax = Check(mq.Fetch(req));
  std::vector<int> predicted(static_cast<size_t>(input->n), 0);
  for (size_t i = 0; i < predicted.size(); ++i) {
    int best = 0;
    for (int k = 1; k < 10; ++k) {
      if (softmax.columns[static_cast<size_t>(k)][i] >
          softmax.columns[static_cast<size_t>(best)][i]) {
        best = k;
      }
    }
    predicted[i] = best;
  }
  const auto confusion = dq::ConfusionMatrix(data.labels, predicted, 10);
  uint64_t diag = 0, total = 0;
  for (int t = 0; t < 10; ++t) {
    for (int p = 0; p < 10; ++p) {
      total += confusion[t][p];
      if (t == p) diag += confusion[t][p];
    }
  }
  std::printf("\n(untrained-network sanity stat: %llu/%llu images land on "
              "the diagonal)\n",
              static_cast<unsigned long long>(diag),
              static_cast<unsigned long long>(total));
  return 0;
}
